#include "util/ripple_time.hpp"

#include <gtest/gtest.h>

namespace xrpl::util {
namespace {

TEST(RippleTimeTest, EpochIsYear2000) {
    EXPECT_EQ(format(RippleTime{0}), "2000-01-01 00:00:00");
    EXPECT_EQ(to_unix(RippleTime{0}), 946684800);
}

TEST(RippleTimeTest, UnixRoundTrip) {
    const RippleTime t = from_unix(1'440'430'863);
    EXPECT_EQ(to_unix(t), 1'440'430'863);
}

TEST(RippleTimeTest, CalendarConstructionMatchesPaperExample) {
    // The paper's example timestamp: 2015-08-24 15:41:03.
    const RippleTime t = from_calendar(2015, 8, 24, 15, 41, 3);
    EXPECT_EQ(format(t), "2015-08-24 15:41:03");
}

TEST(RippleTimeTest, TruncationToDayMatchesPaperExample) {
    // "the worst resolution ... will modify the value
    //  2015-08-24 15:41:03 to 2015-08-24 00:00:00".
    const RippleTime t = from_calendar(2015, 8, 24, 15, 41, 3);
    EXPECT_EQ(format(truncate(t, TimeResolution::kDays)), "2015-08-24 00:00:00");
}

TEST(RippleTimeTest, TruncationLevels) {
    const RippleTime t = from_calendar(2014, 2, 28, 23, 59, 59);
    EXPECT_EQ(format(truncate(t, TimeResolution::kSeconds)), "2014-02-28 23:59:59");
    EXPECT_EQ(format(truncate(t, TimeResolution::kMinutes)), "2014-02-28 23:59:00");
    EXPECT_EQ(format(truncate(t, TimeResolution::kHours)), "2014-02-28 23:00:00");
    EXPECT_EQ(format(truncate(t, TimeResolution::kDays)), "2014-02-28 00:00:00");
}

TEST(RippleTimeTest, LeapYearFebruary29) {
    const RippleTime t = from_calendar(2016, 2, 29, 12, 0, 0);
    EXPECT_EQ(format(t), "2016-02-29 12:00:00");
    // The day after.
    const RippleTime next{t.seconds + 86400};
    EXPECT_EQ(format_date(next), "2016-03-01");
}

TEST(RippleTimeTest, Year2000IsLeap) {
    const RippleTime t = from_calendar(2000, 2, 29);
    EXPECT_EQ(format_date(t), "2000-02-29");
}

TEST(RippleTimeTest, Year2100IsNotLeapWithinConvention) {
    // 2100 is divisible by 100 but not 400.
    const RippleTime feb28 = from_calendar(2100, 2, 28);
    const RippleTime next{feb28.seconds + 86400};
    EXPECT_EQ(format_date(next), "2100-03-01");
}

TEST(RippleTimeTest, TruncationIsIdempotent) {
    const RippleTime t = from_calendar(2013, 7, 4, 3, 2, 1);
    for (const auto res : {TimeResolution::kSeconds, TimeResolution::kMinutes,
                           TimeResolution::kHours, TimeResolution::kDays}) {
        const RippleTime once = truncate(t, res);
        EXPECT_EQ(truncate(once, res), once);
    }
}

TEST(RippleTimeTest, TruncationIsMonotoneCoarsening) {
    const RippleTime t = from_calendar(2013, 7, 4, 3, 2, 1);
    const RippleTime mn = truncate(t, TimeResolution::kMinutes);
    const RippleTime hr = truncate(t, TimeResolution::kHours);
    const RippleTime dy = truncate(t, TimeResolution::kDays);
    EXPECT_LE(dy.seconds, hr.seconds);
    EXPECT_LE(hr.seconds, mn.seconds);
    EXPECT_LE(mn.seconds, t.seconds);
}

TEST(RippleTimeTest, ResolutionLabels) {
    EXPECT_STREQ(resolution_label(TimeResolution::kSeconds), "sc");
    EXPECT_STREQ(resolution_label(TimeResolution::kMinutes), "mn");
    EXPECT_STREQ(resolution_label(TimeResolution::kHours), "hr");
    EXPECT_STREQ(resolution_label(TimeResolution::kDays), "dy");
}

// Round-trip sweep across a decade of dates.
class CalendarRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CalendarRoundTrip, FormatsBackToSameDate) {
    const int year = GetParam();
    for (int month = 1; month <= 12; ++month) {
        const RippleTime t = from_calendar(year, month, 15, 6, 30, 45);
        char expected[32];
        std::snprintf(expected, sizeof(expected), "%04d-%02d-15 06:30:45", year,
                      month);
        EXPECT_EQ(format(t), expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Years, CalendarRoundTrip,
                         ::testing::Values(2000, 2004, 2013, 2014, 2015, 2016,
                                           2020, 2099));

}  // namespace
}  // namespace xrpl::util
