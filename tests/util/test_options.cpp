// util::Options — the typed XRPL_* registry: parsing, defaults, the
// explicit-presence probe, and the self-documenting option table.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/options.hpp"

namespace xrpl::util {
namespace {

const char* const kAllVars[] = {
    "XRPL_THREADS",
    "XRPL_OBS",
    "XRPL_BENCH_PAYMENTS",
    "XRPL_BENCH_CONSENSUS_SCALE",
    "XRPL_BENCH_REPLAY_PAYMENTS",
    "XRPL_BENCH_REPLAY_ACCOUNTS",
    "XRPL_BENCH_DATAGEN_PAYMENTS",
    "XRPL_BENCH_JSON_DIR",
    "XRPL_DATASET_DIR",
    "XRPL_PATH_INDEX",
};

/// Every test starts and ends with a clean environment (the suite may
/// itself run under XRPL_THREADS pins; save and restore them).
class OptionsTest : public ::testing::Test {
protected:
    void SetUp() override {
        for (const char* name : kAllVars) {
            const char* value = std::getenv(name);
            if (value != nullptr) saved_.emplace_back(name, value);
            ::unsetenv(name);
        }
    }
    void TearDown() override {
        for (const char* name : kAllVars) ::unsetenv(name);
        for (const auto& [name, value] : saved_) {
            ::setenv(name.c_str(), value.c_str(), 1);
        }
    }

private:
    std::vector<std::pair<std::string, std::string>> saved_;
};

TEST_F(OptionsTest, DefaultsWithCleanEnvironment) {
    const Options opts = Options::from_env();
    EXPECT_GE(opts.threads, 1u);
    EXPECT_FALSE(opts.obs);
    EXPECT_FALSE(opts.obs_explicit);
    EXPECT_EQ(opts.bench_payments, 250'000u);
    EXPECT_EQ(opts.bench_consensus_scale, 10u);
    EXPECT_EQ(opts.bench_replay_payments, 40'000u);
    EXPECT_EQ(opts.bench_replay_accounts, 20'000u);
    EXPECT_EQ(opts.bench_datagen_payments, 100'000u);
    EXPECT_EQ(opts.bench_json_dir, ".");
    EXPECT_EQ(opts.dataset_dir, "");  // caching off by default
    EXPECT_TRUE(opts.path_index);     // CSR index engine is the default
}

TEST_F(OptionsTest, ParsesEveryKnob) {
    ::setenv("XRPL_THREADS", "3", 1);
    ::setenv("XRPL_OBS", "1", 1);
    ::setenv("XRPL_BENCH_PAYMENTS", "1234", 1);
    ::setenv("XRPL_BENCH_CONSENSUS_SCALE", "55", 1);
    ::setenv("XRPL_BENCH_REPLAY_PAYMENTS", "777", 1);
    ::setenv("XRPL_BENCH_REPLAY_ACCOUNTS", "888", 1);
    ::setenv("XRPL_BENCH_DATAGEN_PAYMENTS", "4321", 1);
    ::setenv("XRPL_BENCH_JSON_DIR", "/tmp/reports", 1);
    ::setenv("XRPL_DATASET_DIR", "/tmp/datasets", 1);
    ::setenv("XRPL_PATH_INDEX", "0", 1);
    const Options opts = Options::from_env();
    EXPECT_EQ(opts.threads, 3u);
    EXPECT_TRUE(opts.obs);
    EXPECT_TRUE(opts.obs_explicit);
    EXPECT_EQ(opts.bench_payments, 1234u);
    EXPECT_EQ(opts.bench_consensus_scale, 55u);
    EXPECT_EQ(opts.bench_replay_payments, 777u);
    EXPECT_EQ(opts.bench_replay_accounts, 888u);
    EXPECT_EQ(opts.bench_datagen_payments, 4321u);
    EXPECT_EQ(opts.bench_json_dir, "/tmp/reports");
    EXPECT_EQ(opts.dataset_dir, "/tmp/datasets");
    EXPECT_FALSE(opts.path_index);
}

TEST_F(OptionsTest, ObsExplicitDistinguishesZeroFromAbsent) {
    // The bench harness needs "user said 0" vs "user said nothing":
    // both parse to obs == false, only one is explicit.
    ::setenv("XRPL_OBS", "0", 1);
    const Options explicit_off = Options::from_env();
    EXPECT_FALSE(explicit_off.obs);
    EXPECT_TRUE(explicit_off.obs_explicit);

    ::unsetenv("XRPL_OBS");
    const Options absent = Options::from_env();
    EXPECT_FALSE(absent.obs);
    EXPECT_FALSE(absent.obs_explicit);
}

TEST_F(OptionsTest, MalformedValuesFallBack) {
    ::setenv("XRPL_THREADS", "lots", 1);
    ::setenv("XRPL_OBS", "yes", 1);
    ::setenv("XRPL_BENCH_PAYMENTS", "-5", 1);
    const Options opts = Options::from_env();
    EXPECT_GE(opts.threads, 1u);
    EXPECT_FALSE(opts.obs);  // strict flag: only "0"/"1" parse
    EXPECT_EQ(opts.bench_payments, 250'000u);
}

TEST_F(OptionsTest, FromEnvReReadsTheEnvironment) {
    ::setenv("XRPL_THREADS", "2", 1);
    EXPECT_EQ(Options::from_env().threads, 2u);
    ::setenv("XRPL_THREADS", "6", 1);
    EXPECT_EQ(Options::from_env().threads, 6u);  // pure re-parse, no cache
}

TEST_F(OptionsTest, TableCoversEveryKnobExactlyOnce) {
    std::set<std::string> names;
    for (const OptionInfo& row : option_table()) {
        EXPECT_TRUE(names.insert(row.name).second) << row.name;
        EXPECT_STRNE(row.description, "") << row.name;
    }
    for (const char* name : kAllVars) {
        EXPECT_TRUE(names.count(name)) << name << " missing from kOptionTable";
    }
    EXPECT_EQ(names.size(), std::size(kAllVars));
}

TEST_F(OptionsTest, MarkdownListsEveryKnob) {
    const std::string markdown = options_markdown();
    for (const char* name : kAllVars) {
        EXPECT_NE(markdown.find(std::string("`") + name + "`"),
                  std::string::npos)
            << name;
    }
}

}  // namespace
}  // namespace xrpl::util
