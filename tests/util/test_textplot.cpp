#include "util/textplot.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace xrpl::util {
namespace {

TEST(TextPlotTest, BarLengthsProportional) {
    std::ostringstream os;
    render_bar_chart(os,
                     {Bar{"small", 10.0, -1.0}, Bar{"large", 100.0, -1.0}},
                     BarChartOptions{});
    const std::string out = os.str();
    // Count '#' per line.
    std::istringstream lines(out);
    std::string line;
    std::size_t small_bar = 0;
    std::size_t large_bar = 0;
    while (std::getline(lines, line)) {
        const std::size_t hashes =
            static_cast<std::size_t>(std::count(line.begin(), line.end(), '#'));
        if (line.find("small") != std::string::npos) small_bar = hashes;
        if (line.find("large") != std::string::npos) large_bar = hashes;
    }
    EXPECT_GT(large_bar, small_bar);
    EXPECT_GE(small_bar, 1u);
}

TEST(TextPlotTest, LogScaleCompressesRange) {
    std::ostringstream os;
    BarChartOptions options;
    options.log_scale = true;
    options.width = 40;
    render_bar_chart(os, {Bar{"a", 10.0, -1.0}, Bar{"b", 1e6, -1.0}}, options);
    std::istringstream lines(os.str());
    std::string line;
    std::size_t a_bar = 0;
    while (std::getline(lines, line)) {
        if (line.find("a ") == 0) {
            a_bar = static_cast<std::size_t>(
                std::count(line.begin(), line.end(), '#'));
        }
    }
    // On a log scale 10 vs 1e6 is ~1/6 of the width, not ~0.
    EXPECT_GE(a_bar, 5u);
}

TEST(TextPlotTest, SecondarySeriesRendered) {
    std::ostringstream os;
    BarChartOptions options;
    options.secondary_header = "valid";
    render_bar_chart(os, {Bar{"v1", 100.0, 60.0}}, options);
    const std::string out = os.str();
    EXPECT_NE(out.find("valid"), std::string::npos);
    EXPECT_NE(out.find('='), std::string::npos);
}

TEST(TextPlotTest, ZeroValuesProduceNoBar) {
    std::ostringstream os;
    render_bar_chart(os, {Bar{"zero", 0.0, -1.0}, Bar{"one", 5.0, -1.0}},
                     BarChartOptions{});
    std::istringstream lines(os.str());
    std::string line;
    while (std::getline(lines, line)) {
        if (line.find("zero") != std::string::npos) {
            EXPECT_EQ(std::count(line.begin(), line.end(), '#'), 0);
        }
    }
}

TEST(TextPlotTest, SeriesRendering) {
    std::ostringstream os;
    render_series(os, "hops", "payments",
                  {SeriesPoint{1, 100}, SeriesPoint{2, 50}}, true);
    const std::string out = os.str();
    EXPECT_NE(out.find("hops"), std::string::npos);
    EXPECT_NE(out.find("payments"), std::string::npos);
    EXPECT_NE(out.find("100"), std::string::npos);
}

}  // namespace
}  // namespace xrpl::util
