#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace xrpl::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, Uniform01StaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformU64RespectsInclusiveBounds) {
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const std::uint64_t v = rng.uniform_u64(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformI64HandlesNegativeRanges) {
    Rng rng(13);
    for (int i = 0; i < 1'000; ++i) {
        const std::int64_t v = rng.uniform_i64(-10, -5);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -5);
    }
}

TEST(RngTest, BernoulliEdgeCases) {
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(RngTest, BernoulliFrequencyApproximatesP) {
    Rng rng(19);
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanConverges) {
    Rng rng(23);
    double sum = 0.0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMomentsConverge) {
    Rng rng(29);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ParetoRespectsMinimum) {
    Rng rng(31);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
    }
}

TEST(RngTest, ForkProducesIndependentStream) {
    Rng parent(41);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.next() == child.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

// Regression for the Box-Muller spare-value hazard: a cached second
// draw (or a rejection loop) would make the raw draw count per call
// value-dependent, desynchronizing split streams. `normal` must
// consume EXACTLY two raw draws, every call.
TEST(RngTest, NormalConsumesExactlyTwoDraws) {
    Rng a(61);
    Rng b(61);
    for (int i = 0; i < 10'000; ++i) {
        (void)a.normal(0.0, 1.0);
        b.next();
        b.next();
        // The separator draw doubles as the lockstep check: it only
        // matches if `normal` consumed exactly the two draws above.
        ASSERT_EQ(a.next(), b.next()) << "call " << i;
    }
}

TEST(RngTest, ExponentialAndParetoConsumeExactlyOneDraw) {
    Rng a(67);
    Rng b(67);
    for (int i = 0; i < 10'000; ++i) {
        if (i % 2 == 0) {
            (void)a.exponential(3.0);
        } else {
            (void)a.pareto(1.0, 2.0);
        }
        b.next();
        ASSERT_EQ(a.next(), b.next()) << "call " << i;
    }
}

TEST(RngTest, NormalNeverProducesNonFinite) {
    Rng rng(71);
    for (int i = 0; i < 100'000; ++i) {
        EXPECT_TRUE(std::isfinite(rng.normal(0.0, 1.0)));
    }
}

// ---- RngStream: hierarchical key derivation ------------------------------

TEST(RngStreamTest, RootMatchesPlainRngSeeding) {
    const RngStream root(42);
    Rng streamed = root.rng();
    Rng plain(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(streamed.next(), plain.next());
    EXPECT_EQ(root.key(), 42u);
}

TEST(RngStreamTest, DeriveIsDeterministicAndPathDependentOnly) {
    const RngStream root(7);
    EXPECT_EQ(root.derive("slice", 3).key(), root.derive("slice", 3).key());
    EXPECT_EQ(root.derive("slice").key(), root.derive("slice", 0).key());
    // The key depends on the path, not on sibling derivations.
    const std::uint64_t before = root.derive("workload", 1).key();
    (void)root.derive("population");
    (void)root.derive("workload", 2);
    EXPECT_EQ(root.derive("workload", 1).key(), before);
}

TEST(RngStreamTest, DistinctLabelsAndIndicesDiverge) {
    const RngStream root(20130101);
    EXPECT_NE(root.derive("period", 0).key(), root.derive("period", 1).key());
    EXPECT_NE(root.derive("period", 1).key(), root.derive("period", 2).key());
    EXPECT_NE(root.derive("clock").key(), root.derive("workload").key());
    EXPECT_NE(root.derive("a", 1).key(), root.derive("b", 1).key());
    // Two-level paths do not alias single-level ones.
    EXPECT_NE(root.derive("slice", 1).derive("workload").key(),
              root.derive("workload", 1).key());
}

// Streams with ADJACENT labels/indices must behave as independent
// generators: no shared values (non-overlapping sequences) and no
// linear correlation.
TEST(RngStreamTest, AdjacentStreamsDoNotOverlap) {
    const RngStream root(99);
    constexpr int kStreams = 8;
    constexpr int kDraws = 4'096;
    std::vector<std::uint64_t> seen;
    seen.reserve(kStreams * kDraws);
    for (int s = 0; s < kStreams; ++s) {
        Rng rng = root.derive("slice", static_cast<std::uint64_t>(s)).rng();
        for (int i = 0; i < kDraws; ++i) seen.push_back(rng.next());
    }
    std::sort(seen.begin(), seen.end());
    const auto dup = std::adjacent_find(seen.begin(), seen.end());
    // 32K u64 draws: expected birthday collisions ~ 3e-11.
    EXPECT_EQ(dup, seen.end());
}

TEST(RngStreamTest, AdjacentStreamsAreUncorrelated) {
    const RngStream root(20151201);
    constexpr int n = 50'000;
    Rng a = root.derive("period", 0).rng();
    Rng b = root.derive("period", 1).rng();
    double sum_a = 0.0;
    double sum_b = 0.0;
    double sum_ab = 0.0;
    double sum_a2 = 0.0;
    double sum_b2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = a.uniform01();
        const double y = b.uniform01();
        sum_a += x;
        sum_b += y;
        sum_ab += x * y;
        sum_a2 += x * x;
        sum_b2 += y * y;
    }
    const double mean_a = sum_a / n;
    const double mean_b = sum_b / n;
    const double cov = sum_ab / n - mean_a * mean_b;
    const double var_a = sum_a2 / n - mean_a * mean_a;
    const double var_b = sum_b2 / n - mean_b * mean_b;
    const double corr = cov / std::sqrt(var_a * var_b);
    // Pearson correlation of independent U(0,1) draws at n=50k has
    // stddev ~1/sqrt(n) ≈ 0.0045; 0.02 is > 4 sigma.
    EXPECT_LT(std::abs(corr), 0.02);
}

TEST(ZipfSamplerTest, RankZeroIsMostPopular) {
    Rng rng(43);
    const ZipfSampler zipf(100, 1.2);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100'000; ++i) ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[50]);
    const int max = *std::max_element(counts.begin(), counts.end());
    EXPECT_EQ(max, counts[0]);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
    Rng rng(47);
    const ZipfSampler zipf(5, 1.0);
    for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.sample(rng), 5u);
}

TEST(CategoricalSamplerTest, MatchesWeights) {
    Rng rng(53);
    const std::vector<double> weights = {1.0, 3.0, 6.0};
    const CategoricalSampler sampler(weights);
    std::vector<int> counts(3, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(CategoricalSamplerTest, ZeroWeightNeverSampled) {
    Rng rng(59);
    const std::vector<double> weights = {0.0, 1.0};
    const CategoricalSampler sampler(weights);
    for (int i = 0; i < 10'000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

}  // namespace
}  // namespace xrpl::util
