#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace xrpl::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RngTest, Uniform01StaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformU64RespectsInclusiveBounds) {
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const std::uint64_t v = rng.uniform_u64(3, 7);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 7u);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformI64HandlesNegativeRanges) {
    Rng rng(13);
    for (int i = 0; i < 1'000; ++i) {
        const std::int64_t v = rng.uniform_i64(-10, -5);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -5);
    }
}

TEST(RngTest, BernoulliEdgeCases) {
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(RngTest, BernoulliFrequencyApproximatesP) {
    Rng rng(19);
    int hits = 0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMeanConverges) {
    Rng rng(23);
    double sum = 0.0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMomentsConverge) {
    Rng rng(29);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 200'000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(2.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ParetoRespectsMinimum) {
    Rng rng(31);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
    }
}

TEST(RngTest, ForkProducesIndependentStream) {
    Rng parent(41);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.next() == child.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, RankZeroIsMostPopular) {
    Rng rng(43);
    const ZipfSampler zipf(100, 1.2);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100'000; ++i) ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[0], counts[50]);
    const int max = *std::max_element(counts.begin(), counts.end());
    EXPECT_EQ(max, counts[0]);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
    Rng rng(47);
    const ZipfSampler zipf(5, 1.0);
    for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.sample(rng), 5u);
}

TEST(CategoricalSamplerTest, MatchesWeights) {
    Rng rng(53);
    const std::vector<double> weights = {1.0, 3.0, 6.0};
    const CategoricalSampler sampler(weights);
    std::vector<int> counts(3, 0);
    const int n = 100'000;
    for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(CategoricalSamplerTest, ZeroWeightNeverSampled) {
    Rng rng(59);
    const std::vector<double> weights = {0.0, 1.0};
    const CategoricalSampler sampler(weights);
    for (int i = 0; i < 10'000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

}  // namespace
}  // namespace xrpl::util
