#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace xrpl::util {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
    TextTable table({"name", "count"});
    table.add_row({"alpha", "10"});
    table.add_row({"b", "2000"});
    std::ostringstream os;
    table.render(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("2000"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, RowArityMismatchThrows) {
    TextTable table({"a", "b"});
    EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, AlignmentArityMismatchThrows) {
    TextTable table({"a", "b"});
    EXPECT_THROW(table.set_alignment({Align::kLeft}), std::invalid_argument);
}

TEST(TextTableTest, CountsRows) {
    TextTable table({"x"});
    EXPECT_EQ(table.row_count(), 0u);
    table.add_row({"1"});
    table.add_row({"2"});
    EXPECT_EQ(table.row_count(), 2u);
}

TEST(FormatTest, FormatCountInsertsThousandsSeparators) {
    EXPECT_EQ(format_count(0), "0");
    EXPECT_EQ(format_count(999), "999");
    EXPECT_EQ(format_count(1000), "1,000");
    EXPECT_EQ(format_count(1'234'567), "1,234,567");
    EXPECT_EQ(format_count(1'000'000'000), "1,000,000,000");
}

TEST(FormatTest, FormatPercentTwoDecimals) {
    EXPECT_EQ(format_percent(0.9983), "99.83%");
    EXPECT_EQ(format_percent(0.0128), "1.28%");
    EXPECT_EQ(format_percent(1.0), "100.00%");
}

TEST(FormatTest, FormatDoubleRespectsDigits) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace xrpl::util
