// Contract macro semantics (DESIGN.md §10).
//
// Contract-enabled builds (Debug, or -DXRPL_ENABLE_CONTRACTS=ON —
// the sanitizer presets) must die with a diagnostic on violation;
// Release builds must expand to true no-ops whose condition is never
// evaluated. Both halves compile from this one file — the #if picks
// which half runs, so every build mode verifies its own behavior.
#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

#if XRPL_CONTRACTS_ENABLED

TEST(ContractDeathTest, AssertViolationAbortsWithDiagnostic) {
    EXPECT_DEATH(XRPL_ASSERT(1 + 1 == 3, "arithmetic must work"),
                 "contract assertion failed: 1 \\+ 1 == 3 — arithmetic must work");
}

TEST(ContractDeathTest, InvariantViolationAbortsWithDiagnostic) {
    EXPECT_DEATH(XRPL_INVARIANT(false, "state must be consistent"),
                 "contract invariant failed: false — state must be consistent");
}

TEST(ContractDeathTest, UnreachableAbortsWithDiagnostic) {
    EXPECT_DEATH(XRPL_UNREACHABLE("this path must never run"),
                 "contract unreachable failed: reached — this path must never run");
}

TEST(ContractTest, PassingContractsEvaluateTheConditionOnce) {
    int evaluations = 0;
    XRPL_ASSERT(++evaluations > 0, "side effect runs in contract builds");
    EXPECT_EQ(evaluations, 1);
    XRPL_INVARIANT(++evaluations > 0, "side effect runs in contract builds");
    EXPECT_EQ(evaluations, 2);
}

TEST(ContractTest, DiagnosticNamesTheSourceLocation) {
    EXPECT_DEATH(XRPL_ASSERT(false, "location check"), "test_contract\\.cpp");
}

#else  // Release: contracts are no-ops.

TEST(ContractTest, ReleaseAssertNeverEvaluatesTheCondition) {
    int evaluations = 0;
    XRPL_ASSERT(++evaluations > 0, "must not run");
    XRPL_INVARIANT(++evaluations > 0, "must not run");
    EXPECT_EQ(evaluations, 0);
}

TEST(ContractTest, ReleaseAssertIgnoresFalseConditions) {
    // A violated contract in Release is simply not checked — no abort,
    // no evaluation, no [[assume]]-style UB license (see contract.hpp).
    XRPL_ASSERT(false, "not checked in Release");
    XRPL_INVARIANT(false, "not checked in Release");
    SUCCEED();
}

#endif

}  // namespace
