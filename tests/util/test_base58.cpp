#include "util/base58.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace xrpl::util {
namespace {

TEST(Base58Test, EmptyInputEncodesEmpty) {
    EXPECT_EQ(base58_encode({}), "");
    const auto decoded = base58_decode("");
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->empty());
}

TEST(Base58Test, LeadingZerosArePreserved) {
    const std::vector<std::uint8_t> data = {0, 0, 0, 1, 2, 3};
    const std::string encoded = base58_encode(data);
    // Ripple's zero digit is 'r'.
    EXPECT_EQ(encoded.substr(0, 3), "rrr");
    const auto decoded = base58_decode(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

TEST(Base58Test, RejectsCharactersOutsideAlphabet) {
    EXPECT_FALSE(base58_decode("0OIl").has_value());  // not in any base58
    EXPECT_FALSE(base58_decode("hello world").has_value());  // space
}

TEST(Base58Test, SingleByteRoundTrip) {
    for (int b = 0; b < 256; ++b) {
        const std::vector<std::uint8_t> data = {static_cast<std::uint8_t>(b)};
        const auto decoded = base58_decode(base58_encode(data));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(*decoded, data) << "byte " << b;
    }
}

TEST(Base58CheckTest, RoundTripsTwentyBytePayload) {
    std::vector<std::uint8_t> payload(20);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        payload[i] = static_cast<std::uint8_t>(i * 7 + 3);
    }
    const std::string address = base58check_encode(kTokenAccountId, payload);
    // Account addresses start with 'r' (type prefix 0x00 maps to the
    // alphabet's zero digit).
    EXPECT_EQ(address.front(), 'r');
    const auto decoded = base58check_decode(kTokenAccountId, address);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, payload);
}

TEST(Base58CheckTest, CorruptedCharacterFailsChecksum) {
    std::vector<std::uint8_t> payload(20, 0xab);
    std::string address = base58check_encode(kTokenAccountId, payload);
    // Flip one character to a different alphabet character.
    const char original = address[5];
    address[5] = original == 'x' ? 'y' : 'x';
    EXPECT_FALSE(base58check_decode(kTokenAccountId, address).has_value());
}

TEST(Base58CheckTest, WrongTypePrefixIsRejected) {
    const std::vector<std::uint8_t> payload(20, 0x11);
    const std::string address = base58check_encode(kTokenAccountId, payload);
    EXPECT_FALSE(base58check_decode(kTokenNodePublic, address).has_value());
}

TEST(Base58CheckTest, NodePublicPrefixYieldsNAddresses) {
    // Node public keys are 33 bytes on the real network; with that
    // payload length the 0x1c prefix renders as a leading 'n'.
    const std::vector<std::uint8_t> payload(33, 0x42);
    const std::string key = base58check_encode(kTokenNodePublic, payload);
    EXPECT_EQ(key.front(), 'n');
}

TEST(Base58CheckTest, TooShortStringsAreRejected) {
    EXPECT_FALSE(base58check_decode(kTokenAccountId, "r").has_value());
    EXPECT_FALSE(base58check_decode(kTokenAccountId, "rr").has_value());
}

// Property sweep: random payloads of many sizes round-trip.
class Base58RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base58RoundTrip, RandomPayloadsRoundTrip) {
    Rng rng(GetParam() * 7919 + 1);
    for (int iteration = 0; iteration < 50; ++iteration) {
        std::vector<std::uint8_t> payload(GetParam());
        for (auto& b : payload) {
            b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
        }
        const auto raw = base58_decode(base58_encode(payload));
        ASSERT_TRUE(raw.has_value());
        EXPECT_EQ(*raw, payload);

        const auto checked = base58check_decode(
            kTokenAccountId, base58check_encode(kTokenAccountId, payload));
        ASSERT_TRUE(checked.has_value());
        EXPECT_EQ(*checked, payload);
    }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, Base58RoundTrip,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 20, 21, 32, 33, 64));

}  // namespace
}  // namespace xrpl::util
