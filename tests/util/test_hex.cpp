#include "util/hex.hpp"

#include <gtest/gtest.h>

namespace xrpl::util {
namespace {

TEST(HexTest, EncodesBytesLowercase) {
    const std::vector<std::uint8_t> data = {0x00, 0x0f, 0xa0, 0xff};
    EXPECT_EQ(hex_encode(data), "000fa0ff");
}

TEST(HexTest, EmptyEncodesEmpty) {
    EXPECT_EQ(hex_encode({}), "");
}

TEST(HexTest, DecodesUppercaseAndLowercase) {
    const auto lower = hex_decode("deadbeef");
    const auto upper = hex_decode("DEADBEEF");
    ASSERT_TRUE(lower.has_value());
    ASSERT_TRUE(upper.has_value());
    EXPECT_EQ(*lower, *upper);
    EXPECT_EQ((*lower)[0], 0xde);
}

TEST(HexTest, RejectsOddLength) {
    EXPECT_FALSE(hex_decode("abc").has_value());
}

TEST(HexTest, RejectsNonHexCharacters) {
    EXPECT_FALSE(hex_decode("zz").has_value());
    EXPECT_FALSE(hex_decode("a ").has_value());
}

TEST(HexTest, RoundTripsAllBytes) {
    std::vector<std::uint8_t> data(256);
    for (int i = 0; i < 256; ++i) data[i] = static_cast<std::uint8_t>(i);
    const auto decoded = hex_decode(hex_encode(data));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
}

}  // namespace
}  // namespace xrpl::util
