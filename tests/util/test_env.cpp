// util::env_u64 — strict full-string parsing of environment knobs.
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/env.hpp"

namespace xrpl::util {
namespace {

constexpr const char* kVar = "XRPL_TEST_ENV_U64";

class EnvU64Test : public ::testing::Test {
protected:
    void TearDown() override { ::unsetenv(kVar); }
};

TEST_F(EnvU64Test, UnsetFallsBack) {
    ::unsetenv(kVar);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
}

TEST_F(EnvU64Test, ParsesPositiveInteger) {
    ::setenv(kVar, "8", 1);
    EXPECT_EQ(env_u64(kVar, 17), 8u);
    ::setenv(kVar, "250000", 1);
    EXPECT_EQ(env_u64(kVar, 17), 250'000u);
}

TEST_F(EnvU64Test, RejectsTrailingGarbage) {
    ::setenv(kVar, "8 threads", 1);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
    ::setenv(kVar, "0x10", 1);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
}

TEST_F(EnvU64Test, RejectsSignsZeroAndEmpty) {
    ::setenv(kVar, "-3", 1);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
    ::setenv(kVar, "+3", 1);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
    ::setenv(kVar, "0", 1);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
    ::setenv(kVar, "", 1);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
}

TEST_F(EnvU64Test, RejectsOverflow) {
    ::setenv(kVar, "99999999999999999999999999", 1);
    EXPECT_EQ(env_u64(kVar, 17), 17u);
}

}  // namespace
}  // namespace xrpl::util
