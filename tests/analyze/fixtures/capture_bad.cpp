// Analyzer fixture: every write below shares mutable state across
// pool workers — must trigger [capture-race] (and nothing else).
// Never compiled; tools/analyze --self-test pins the diagnostics.
#include <cstddef>
#include <vector>

namespace fixture {

std::size_t racy_sum(const std::vector<std::size_t>& rows) {
    std::size_t total = 0;
    std::vector<std::size_t> log;
    static std::size_t calls = 0;
    exec::parallel_for(rows.size(), 8192,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t r = begin; r < end; ++r) {
                               total += rows[r];        // racing accumulator
                               log.push_back(rows[r]);  // racing container
                           }
                           ++calls;  // function-local static
                       });
    return total;
}

}  // namespace fixture
