// Analyzer fixture: the benign namespace-scope shapes — constants,
// functions, types, aliases, and a function-local static (pass 2's
// jurisdiction, not this pass's). Must stay silent. Never compiled.
#include <cstddef>
#include <vector>

namespace fixture {

inline constexpr std::size_t kChunkRows = 8192;
constexpr double kRatio = 0.5;
const std::size_t kTableBytes = sizeof(std::size_t) * kChunkRows;

struct Stats {
    std::size_t rows = 0;
};

enum class Mode { kSerial, kChunked };

using RowVector = std::vector<std::size_t>;

std::size_t cached_parallelism();

inline std::size_t add_pair(std::size_t a, std::size_t b) { return a + b; }

std::size_t cached_parallelism() {
    static std::size_t width = add_pair(1, 3);
    return width;
}

}  // namespace fixture
