// Analyzer fixture: the sanctioned shapes — disjoint per-slot writes,
// body-owned locals, chunk partials for the ordered merge, and an
// annotated deliberately-shared histogram. The capture pass must stay
// silent. Never compiled; tools/analyze --self-test pins this.
#include <cstddef>
#include <vector>

namespace fixture {

std::vector<std::size_t> doubled(const std::vector<std::size_t>& rows) {
    std::vector<std::size_t> out(rows.size());
    static obs::Histogram& chunk_ns = obs::histogram("fixture.chunk_ns");
    exec::parallel_for(rows.size(), 8192,
                       [&](std::size_t begin, std::size_t end) {
                           // analyze-shared: order-free histogram; record is striped-atomic
                           const obs::ScopedTimer timer(chunk_ns);
                           for (std::size_t r = begin; r < end; ++r) {
                               out[r] = rows[r] * 2;  // disjoint slot
                           }
                       });
    return out;
}

std::size_t folded(const std::vector<std::size_t>& rows) {
    return exec::map_reduce<std::size_t>(
        4,
        [&](std::size_t c) {
            std::size_t local = 0;
            local += rows[c];  // body-owned partial
            return local;
        },
        [](std::size_t& acc, std::size_t&& part) { acc += part; });
}

}  // namespace fixture
