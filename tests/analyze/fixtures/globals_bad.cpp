// Analyzer fixture: hidden mutable globals — every declaration below
// must trigger [global-state] (and nothing else). Never compiled.
#include <cstddef>

namespace fixture {

std::size_t g_calls = 0;                 // plain mutable global
static bool g_flag = false;              // internal linkage changes nothing
thread_local std::size_t g_scratch = 0;  // per-thread is still order-coupled
const char* g_name = "fixture";          // mutable POINTER to const

constexpr std::size_t kLimit = 8;  // fine: constexpr
const std::size_t kFloor = 1;      // fine: const object

}  // namespace fixture
