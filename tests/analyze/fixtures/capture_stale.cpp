// Analyzer fixture: an `// analyze-shared` annotation with nothing
// left to excuse — must trigger [stale-annotation] only, so the
// allowlist ratchets down instead of accreting.
#include <cstddef>

namespace fixture {

std::size_t well_behaved(std::size_t n) {
    std::size_t acc = 0;
    // analyze-shared: left behind after a refactor
    acc += n;
    return acc;
}

}  // namespace fixture
