// Layer fixture (violating): core → util is legal on its own, but
// util/low.hpp includes this file back, closing a cycle.
#pragma once

#include "util/low.hpp"

namespace fixture_core {
inline int high() { return 2; }
}  // namespace fixture_core
