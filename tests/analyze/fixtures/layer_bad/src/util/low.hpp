// Layer fixture (violating): util is a leaf — including core is an
// upward edge ([layer-edge]) and, with core/high.hpp including us
// back, an include cycle ([layer-cycle]).
#pragma once

#include "core/high.hpp"

namespace fixture_util {
inline int low() { return 1; }
}  // namespace fixture_util
