// Layer fixture (clean): util sits at the bottom of the DAG and
// includes nothing.
#pragma once

namespace fixture_util {
inline int low_bit(int v) { return v & -v; }
}  // namespace fixture_util
