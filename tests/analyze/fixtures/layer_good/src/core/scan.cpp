// Layer fixture (clean): core → ledger is a declared downward edge.
#include "ledger/rows.hpp"

namespace fixture_core {
int scan_bit(int v) { return fixture_ledger::row_bit(v); }
}  // namespace fixture_core
