// Layer fixture (clean): ledger → util is a declared downward edge.
#pragma once

#include "util/bits.hpp"

namespace fixture_ledger {
inline int row_bit(int v) { return fixture_util::low_bit(v); }
}  // namespace fixture_ledger
