// DatasetCache behaviour: disabled passthrough, miss -> store -> hit,
// corrupt-entry eviction, and the snap.cache.* metrics the warm-cache
// CI smoke asserts on.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ledger/payment_columns.hpp"
#include "obs/metrics.hpp"
#include "snap/dataset_cache.hpp"
#include "snap/xcol.hpp"
#include "util/file_io.hpp"

namespace xrpl::snap {
namespace {

ledger::PaymentColumns sample_columns() {
    ledger::PaymentColumns columns;
    for (int i = 0; i < 300; ++i) {
        ledger::TxRecord record;
        record.sender =
            ledger::AccountID::from_seed("alice" + std::to_string(i % 7));
        record.destination = ledger::AccountID::from_seed("bob");
        record.currency = ledger::Currency::from_code("USD");
        record.amount =
            ledger::IouAmount::from_mantissa_exponent(1'000 + i, -2);
        record.time.seconds = i * 4;
        columns.push_back(record);
    }
    return columns;
}

/// Fixture: a scratch cache directory wiped per test, with obs
/// metrics enabled and zeroed so counter assertions are exact.
class DatasetCacheTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::string("dataset_cache_test.tmp/") +
               ::testing::UnitTest::GetInstance()->current_test_info()->name();
        ASSERT_TRUE(util::ensure_directory(dir_));
        was_enabled_ = obs::enabled();
        obs::set_enabled(true);
        obs::reset_metrics();
    }
    void TearDown() override {
        obs::set_enabled(was_enabled_);
        obs::reset_metrics();
    }

    [[nodiscard]] std::uint64_t metric(const char* name) const {
        return obs::counter(name).value();
    }

    /// The scratch directory survives across ctest invocations, so a
    /// test that asserts on miss/hit order must drop its entry first.
    static void purge(const DatasetCache& cache, const std::string& key) {
        ASSERT_TRUE(util::remove_file(cache.path_for(key)));
    }

    std::string dir_;
    bool was_enabled_ = false;
};

TEST_F(DatasetCacheTest, DisabledCacheIsPurePassthrough) {
    const DatasetCache cache("");
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.try_load("deadbeef").has_value());
    EXPECT_FALSE(cache.store("deadbeef", sample_columns()));

    int calls = 0;
    const ledger::PaymentColumns columns =
        cache.load_or_generate("deadbeef", [&] {
            ++calls;
            return sample_columns();
        });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(ledger::columns_fingerprint(columns),
              ledger::columns_fingerprint(sample_columns()));
    // A disabled cache never writes.
    EXPECT_FALSE(util::file_exists(cache.path_for("deadbeef")));
}

TEST_F(DatasetCacheTest, MissStoresThenHitSkipsGeneration) {
    const DatasetCache cache(dir_);
    ASSERT_TRUE(cache.enabled());
    const std::string key = "cafe0123";
    purge(cache, key);

    int calls = 0;
    const auto generate = [&] {
        ++calls;
        return sample_columns();
    };

    const ledger::PaymentColumns cold = cache.load_or_generate(key, generate);
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(util::file_exists(cache.path_for(key)));
    EXPECT_EQ(metric("snap.cache.misses"), 1u);
    EXPECT_EQ(metric("snap.cache.stores"), 1u);
    EXPECT_EQ(metric("snap.cache.hits"), 0u);

    const ledger::PaymentColumns warm = cache.load_or_generate(key, generate);
    EXPECT_EQ(calls, 1) << "warm path must not regenerate";
    EXPECT_EQ(metric("snap.cache.hits"), 1u);
    EXPECT_EQ(ledger::columns_fingerprint(warm),
              ledger::columns_fingerprint(cold));
}

TEST_F(DatasetCacheTest, TryLoadReturnsExactStoredColumns) {
    const DatasetCache cache(dir_);
    const ledger::PaymentColumns columns = sample_columns();
    purge(cache, "feedface");
    ASSERT_TRUE(cache.store("feedface", columns));

    const std::optional<ledger::PaymentColumns> loaded =
        cache.try_load("feedface");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(ledger::columns_fingerprint(*loaded),
              ledger::columns_fingerprint(columns));
}

TEST_F(DatasetCacheTest, CorruptEntryIsEvictedAndRegenerated) {
    const DatasetCache cache(dir_);
    const std::string key = "0badc0de";
    purge(cache, key);
    ASSERT_TRUE(cache.store(key, sample_columns()));

    // Damage the artifact in place.
    const std::string path = cache.path_for(key);
    auto bytes = util::read_file_bytes(path);
    ASSERT_TRUE(bytes.has_value());
    (*bytes)[bytes->size() / 2] ^= 0x20;
    ASSERT_TRUE(util::write_file_bytes(path, *bytes));

    // try_load refuses it, removes it, and counts the eviction.
    EXPECT_FALSE(cache.try_load(key).has_value());
    EXPECT_FALSE(util::file_exists(path));
    EXPECT_EQ(metric("snap.cache.evictions"), 1u);

    // load_or_generate then repairs the entry end to end.
    int calls = 0;
    const ledger::PaymentColumns columns =
        cache.load_or_generate(key, [&] {
            ++calls;
            return sample_columns();
        });
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(util::file_exists(path));
    EXPECT_EQ(ledger::columns_fingerprint(columns),
              ledger::columns_fingerprint(sample_columns()));
}

TEST_F(DatasetCacheTest, MissingEntryIsAMissNotAnEviction) {
    const DatasetCache cache(dir_);
    EXPECT_FALSE(cache.try_load("absent").has_value());
    EXPECT_EQ(metric("snap.cache.evictions"), 0u);
}

TEST_F(DatasetCacheTest, StoredArtifactIsAValidXcolFile) {
    // Cache entries are plain .xcol artifacts: snapctl / read_file_info
    // must be able to inspect them.
    const DatasetCache cache(dir_);
    const ledger::PaymentColumns columns = sample_columns();
    purge(cache, "11223344");
    ASSERT_TRUE(cache.store("11223344", columns));

    const auto info = read_file_info(cache.path_for("11223344"));
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, kXcolVersion);
    EXPECT_EQ(info->rows, columns.size());
}

}  // namespace
}  // namespace xrpl::snap
