// XCOL codec — round-trip fidelity, thread-width byte stability, and
// the corruption-rejection taxonomy.
//
// The round-trip suite uses the SAME pinned generator config as the
// sharded-determinism suite, so `load(save(history))` is checked
// against the pinned golden fingerprint — a snapshot that decodes to
// anything but the exact generated store cannot pass.
//
// The corruption suite flips/truncates real encoded bytes and asserts
// each damage class maps to ITS OWN LoadError: corruption must be
// understood (attributed to a region), not merely detected.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/history.hpp"
#include "exec/chunked_view.hpp"
#include "exec/thread_pool.hpp"
#include "ledger/payment_columns.hpp"
#include "snap/xcol.hpp"

namespace xrpl::snap {
namespace {

/// The sharded-determinism pinned config (four slices, fingerprint
/// pinned in test_sharded_determinism.cpp).
datagen::GeneratorConfig pinned_config() {
    datagen::GeneratorConfig config;
    config.seed = 20170605;
    config.num_users = 400;
    config.num_gateways = 12;
    config.num_market_makers = 20;
    config.num_merchants = 60;
    config.num_hubs = 6;
    config.target_payments = 6'000;
    config.payments_per_slice = 1'500;
    return config;
}

constexpr char kPinnedFingerprint[] =
    "4d926cb63c2c15263ab354e6cc54eeebf82f38d127f2ef0ecc69b58e10e5ee6c";

/// A small synthetic store with interesting values: negative
/// mantissas, extreme exponents, non-monotonic timestamps, repeated
/// accounts — and enough rows to span multiple chunks.
ledger::PaymentColumns synthetic_columns(std::size_t rows) {
    ledger::PaymentColumns columns;
    columns.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        ledger::TxRecord record;
        record.sender = ledger::AccountID::from_seed(
            "sender" + std::to_string(i % 97));
        record.destination = ledger::AccountID::from_seed(
            "dest" + std::to_string(i % 31));
        record.currency = ledger::Currency::from_code(
            i % 3 == 0 ? "USD" : (i % 3 == 1 ? "BTC" : "XRP"));
        record.amount = ledger::IouAmount::from_mantissa_exponent(
            i % 2 == 0 ? static_cast<std::int64_t>(i) * 1'000'003
                       : -static_cast<std::int64_t>(i) * 7,
            static_cast<std::int32_t>(static_cast<int>(i % 40) - 20));
        record.time.seconds =
            static_cast<std::int64_t>(i * 5) - (i % 11 == 0 ? 40 : 0);
        columns.push_back(record);
    }
    return columns;
}

TEST(XcolRoundTripTest, EmptyStoreRoundTrips) {
    const ledger::PaymentColumns empty;
    const std::vector<std::uint8_t> bytes = encode_columns(empty);
    const LoadResult result = decode_columns(bytes);
    ASSERT_TRUE(result.ok()) << result.detail;
    EXPECT_EQ(result.columns.size(), 0u);
    EXPECT_EQ(ledger::columns_fingerprint(result.columns),
              ledger::columns_fingerprint(empty));
}

TEST(XcolRoundTripTest, SyntheticStoreRoundTripsExactly) {
    // > 2 chunks, with a ragged tail chunk.
    const ledger::PaymentColumns columns =
        synthetic_columns(2 * exec::kDefaultChunkRows + 1'234);
    const LoadResult result = decode_columns(encode_columns(columns));
    ASSERT_TRUE(result.ok()) << result.detail;
    EXPECT_EQ(ledger::columns_fingerprint(result.columns),
              ledger::columns_fingerprint(columns));
}

TEST(XcolRoundTripTest, EncodedBytesIdenticalAcrossThreadWidths) {
    const ledger::PaymentColumns columns =
        synthetic_columns(3 * exec::kDefaultChunkRows + 77);
    std::vector<std::uint8_t> serial;
    {
        exec::ScopedParallelism width(1);
        serial = encode_columns(columns);
    }
    for (const std::size_t width : {2u, 8u}) {
        exec::ScopedParallelism pool(width);
        EXPECT_EQ(encode_columns(columns), serial) << "width " << width;
    }
}

TEST(XcolRoundTripTest, GeneratedHistoryReproducesPinnedFingerprint) {
    // The acceptance check: save -> load reproduces the generator's
    // pinned golden fingerprint at every pool width.
    const datagen::GeneratedHistory history =
        datagen::generate_history(pinned_config());
    ASSERT_EQ(ledger::columns_fingerprint(history.payments),
              kPinnedFingerprint);
    std::vector<std::uint8_t> serial_bytes;
    for (const std::size_t width : {1u, 2u, 8u}) {
        exec::ScopedParallelism pool(width);
        const std::vector<std::uint8_t> bytes =
            encode_columns(history.payments);
        if (width == 1) {
            serial_bytes = bytes;
        } else {
            EXPECT_EQ(bytes, serial_bytes) << "width " << width;
        }
        const LoadResult result = decode_columns(bytes);
        ASSERT_TRUE(result.ok()) << result.detail;
        EXPECT_EQ(ledger::columns_fingerprint(result.columns),
                  kPinnedFingerprint)
            << "width " << width;
    }
}

TEST(XcolInfoTest, ReadsHeaderWithoutDecoding) {
    const ledger::PaymentColumns columns = synthetic_columns(10'000);
    const std::vector<std::uint8_t> bytes = encode_columns(columns);
    const auto info = read_info(bytes);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->version, kXcolVersion);
    EXPECT_EQ(info->rows, 10'000u);
    EXPECT_EQ(info->chunk_rows, kXcolChunkRows);
    EXPECT_EQ(info->chunk_count, 2u);
    EXPECT_EQ(info->accounts, columns.accounts.size());
    EXPECT_EQ(info->currencies, columns.currencies.size());
    EXPECT_EQ(info->total_bytes, bytes.size());
    EXPECT_EQ(info->seal_hex.size(), 64u);
}

// --- corruption taxonomy -------------------------------------------

class XcolCorruptionTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        bytes_ = new std::vector<std::uint8_t>(
            encode_columns(synthetic_columns(exec::kDefaultChunkRows + 500)));
    }
    static void TearDownTestSuite() {
        delete bytes_;
        bytes_ = nullptr;
    }

    static LoadError expect_rejected(const std::vector<std::uint8_t>& bytes) {
        const LoadResult result = decode_columns(bytes);
        EXPECT_FALSE(result.ok());
        EXPECT_FALSE(result.detail.empty());
        return result.error.value_or(LoadError::kIoError);
    }

    static std::vector<std::uint8_t>* bytes_;
};

std::vector<std::uint8_t>* XcolCorruptionTest::bytes_ = nullptr;

TEST_F(XcolCorruptionTest, PristineBytesStillDecode) {
    EXPECT_TRUE(decode_columns(*bytes_).ok());
}

TEST_F(XcolCorruptionTest, TruncationAnywhereIsTruncated) {
    for (const double fraction : {0.0, 0.1, 0.5, 0.9}) {
        std::vector<std::uint8_t> cut(
            bytes_->begin(),
            bytes_->begin() + static_cast<std::ptrdiff_t>(
                                  fraction *
                                  static_cast<double>(bytes_->size())));
        EXPECT_EQ(expect_rejected(cut), LoadError::kTruncated)
            << "fraction " << fraction;
    }
    // One byte short of valid is still truncated.
    std::vector<std::uint8_t> cut(*bytes_);
    cut.pop_back();
    EXPECT_EQ(expect_rejected(cut), LoadError::kTruncated);
}

TEST_F(XcolCorruptionTest, WrongMagicIsBadMagic) {
    std::vector<std::uint8_t> bad(*bytes_);
    bad[0] = 'Z';
    EXPECT_EQ(expect_rejected(bad), LoadError::kBadMagic);
}

TEST_F(XcolCorruptionTest, StaleVersionIsBadVersion) {
    std::vector<std::uint8_t> bad(*bytes_);
    bad[4] = static_cast<std::uint8_t>(kXcolVersion + 1);
    EXPECT_EQ(expect_rejected(bad), LoadError::kBadVersion);
}

TEST_F(XcolCorruptionTest, FlippedHeaderFieldIsHeaderCorrupt) {
    std::vector<std::uint8_t> bad(*bytes_);
    bad[8] ^= 0x01;  // row_count low byte; header CRC no longer matches
    EXPECT_EQ(expect_rejected(bad), LoadError::kHeaderCorrupt);
}

TEST_F(XcolCorruptionTest, FlippedChunkByteIsChunkCorrupt) {
    // The file midpoint lands inside a chunk body for this store
    // (two chunks of payments dwarf the dictionaries).
    std::vector<std::uint8_t> bad(*bytes_);
    bad[bad.size() / 2] ^= 0x40;
    const LoadResult result = decode_columns(bad);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(*result.error, LoadError::kChunkCorrupt);
    // The error names the damaged chunk.
    EXPECT_NE(result.detail.find("chunk"), std::string::npos);
}

TEST_F(XcolCorruptionTest, FlippedDictionaryByteIsDictCorrupt) {
    // The account dictionary sits just before its CRC + currency dict
    // + its CRC + the 32-byte seal.
    std::vector<std::uint8_t> bad(*bytes_);
    bad[bad.size() - 32 - 4 - 3 - 4 - 10] ^= 0x10;
    EXPECT_EQ(expect_rejected(bad), LoadError::kDictCorrupt);
}

TEST_F(XcolCorruptionTest, FlippedSealIsSealMismatch) {
    // Damage only the trailer: every local CRC still passes, so the
    // mismatch cannot be attributed to a region.
    std::vector<std::uint8_t> bad(*bytes_);
    bad[bad.size() - 1] ^= 0x01;
    EXPECT_EQ(expect_rejected(bad), LoadError::kSealMismatch);
}

TEST_F(XcolCorruptionTest, TrailingGarbageIsMalformed) {
    std::vector<std::uint8_t> bad(*bytes_);
    bad.push_back(0xAB);
    EXPECT_EQ(expect_rejected(bad), LoadError::kMalformed);
}

TEST_F(XcolCorruptionTest, MissingFileIsIoError) {
    const LoadResult result =
        load_columns("definitely/not/a/real/path.xcol");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(*result.error, LoadError::kIoError);
}

TEST_F(XcolCorruptionTest, EveryErrorHasAStableName) {
    for (const LoadError error :
         {LoadError::kIoError, LoadError::kTruncated, LoadError::kBadMagic,
          LoadError::kBadVersion, LoadError::kHeaderCorrupt,
          LoadError::kBadSchema, LoadError::kChunkCorrupt,
          LoadError::kDictCorrupt, LoadError::kSealMismatch,
          LoadError::kMalformed}) {
        EXPECT_STRNE(load_error_name(error), "unknown");
    }
}

}  // namespace
}  // namespace xrpl::snap
