#include <gtest/gtest.h>

#include "analytics/currency_stats.hpp"
#include "analytics/histogram.hpp"
#include "analytics/path_stats.hpp"
#include "analytics/survival.hpp"

namespace xrpl::analytics {
namespace {

TEST(SurvivalTest, BasicShape) {
    const std::vector<float> samples = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    const SurvivalFunction s(samples);
    EXPECT_EQ(s.sample_count(), 10u);
    EXPECT_DOUBLE_EQ(s.survival(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.survival(5.0), 0.5);   // strictly greater than 5
    EXPECT_DOUBLE_EQ(s.survival(10.0), 0.0);
    EXPECT_DOUBLE_EQ(s.survival(100.0), 0.0);
}

TEST(SurvivalTest, MonotoneNonIncreasing) {
    std::vector<float> samples;
    for (int i = 0; i < 1000; ++i) {
        samples.push_back(static_cast<float>((i * 37) % 500));
    }
    const SurvivalFunction s(samples);
    double previous = 1.1;
    for (double x = 0.0; x < 600.0; x += 13.0) {
        const double value = s.survival(x);
        EXPECT_LE(value, previous);
        previous = value;
    }
}

TEST(SurvivalTest, QuantilesAndMedian) {
    std::vector<float> samples;
    for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<float>(i));
    const SurvivalFunction s(samples);
    EXPECT_NEAR(s.median(), 50.0, 1.0);
    EXPECT_NEAR(s.quantile(0.9), 90.0, 1.0);
    EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-6);
}

TEST(SurvivalTest, EmptySamplesAreSafe) {
    const SurvivalFunction s(std::vector<float>{});
    EXPECT_DOUBLE_EQ(s.survival(1.0), 0.0);
    EXPECT_DOUBLE_EQ(s.median(), 0.0);
    EXPECT_EQ(s.sample_count(), 0u);
}

TEST(SurvivalTest, CurveCoversLogGrid) {
    const std::vector<float> samples = {0.001f, 1.0f, 1000.0f};
    const SurvivalFunction s(samples);
    const auto curve = s.curve(-4, 4, 1);
    ASSERT_EQ(curve.size(), 9u);
    EXPECT_NEAR(curve.front().amount, 1e-4, 1e-10);
    EXPECT_NEAR(curve.back().amount, 1e4, 1e-4);
    EXPECT_DOUBLE_EQ(curve.front().survival, 1.0);
    EXPECT_DOUBLE_EQ(curve.back().survival, 0.0);
}

TEST(CountHistogramTest, AddAndShare) {
    CountHistogram h;
    h.add(1, 80);
    h.add(2, 20);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_EQ(h.count(1), 80u);
    EXPECT_EQ(h.count(7), 0u);
    EXPECT_DOUBLE_EQ(h.share(1), 0.8);
    EXPECT_DOUBLE_EQ(h.share(9), 0.0);
    const auto items = h.items();
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].first, 1u);
}

TEST(LogHistogramTest, BucketsByDecade) {
    LogHistogram h;
    h.add(5.0);      // decade 0
    h.add(50.0);     // decade 1
    h.add(55.0);     // decade 1
    h.add(0.02);     // decade -2
    h.add(-1.0);     // ignored
    h.add(0.0);      // ignored
    EXPECT_EQ(h.total(), 4u);
    const auto items = h.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, -2);
    EXPECT_EQ(items[2].first, 1);
    EXPECT_EQ(items[2].second, 2u);
}

TEST(CurrencyStatsTest, RanksDescending) {
    std::unordered_map<ledger::Currency, std::uint64_t> counts;
    counts[ledger::Currency::from_code("XRP")] = 100;
    counts[ledger::Currency::from_code("BTC")] = 40;
    counts[ledger::Currency::from_code("USD")] = 60;
    const auto ranked = rank_currencies(counts);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].currency.to_string(), "XRP");
    EXPECT_EQ(ranked[1].currency.to_string(), "USD");
    EXPECT_EQ(ranked[2].currency.to_string(), "BTC");
    EXPECT_DOUBLE_EQ(ranked[0].share, 0.5);
}

TEST(CurrencyStatsTest, EmptyIsEmpty) {
    const std::unordered_map<ledger::Currency, std::uint64_t> no_counts;
    EXPECT_TRUE(rank_currencies(no_counts).empty());
}

TEST(PathStatsTest, BuildsFromRawHistograms) {
    const std::vector<std::uint64_t> hops = {0, 100, 50, 20, 5, 2, 1, 1, 90};
    const std::vector<std::uint64_t> parallel = {0, 60, 25, 10, 40, 0, 70};
    const PathStats stats = make_path_stats(hops, parallel);
    EXPECT_EQ(stats.hops.count(1), 100u);
    EXPECT_EQ(stats.hops.count(8), 90u);
    EXPECT_EQ(stats.parallel.count(6), 70u);
    EXPECT_EQ(stats.multi_hop_total(), 269u);
}

TEST(PathStatsTest, DetectsTheEightHopAnomaly) {
    // Organic decay with a spam spike at 8 (the paper's MTL).
    const std::vector<std::uint64_t> hops = {0, 1000, 500, 250, 125, 60, 30, 15, 900};
    const PathStats stats = make_path_stats(hops, {});
    EXPECT_EQ(stats.hop_anomaly(), 8u);
}

TEST(PathStatsTest, NoAnomalyInPureDecay) {
    const std::vector<std::uint64_t> hops = {0, 1000, 500, 250, 125};
    const PathStats stats = make_path_stats(hops, {});
    EXPECT_EQ(stats.hop_anomaly(), 0u);
}

}  // namespace
}  // namespace xrpl::analytics
