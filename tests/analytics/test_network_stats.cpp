#include "analytics/network_stats.hpp"

#include <gtest/gtest.h>

// The record-span overload is deprecated (thin shim over the columnar
// scan) but still part of the API surface; this file keeps it covered.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace xrpl::analytics {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;

TEST(NetworkStatsTest, CountsAccountsLinesAndActivity) {
    ledger::LedgerState state;
    const AccountID a = AccountID::from_seed("a");
    const AccountID b = AccountID::from_seed("b");
    const AccountID c = AccountID::from_seed("c");
    for (const auto& id : {a, b, c}) state.create_account(id, {});
    state.set_trust(a, b, Currency::from_code("USD"), IouAmount::from_double(10));
    state.set_trust(a, c, Currency::from_code("USD"), IouAmount::from_double(10));

    std::vector<ledger::TxRecord> records(1);
    records[0].sender = a;
    records[0].destination = b;

    const NetworkStats stats = compute_network_stats(state, records);
    EXPECT_EQ(stats.accounts, 3u);
    EXPECT_EQ(stats.trust_lines, 2u);
    EXPECT_EQ(stats.active_senders, 1u);
    EXPECT_EQ(stats.active_participants, 2u);
    EXPECT_EQ(stats.max_degree, 2u);          // a holds two lines
    EXPECT_NEAR(stats.mean_degree, 4.0 / 3.0, 1e-12);
    EXPECT_EQ(stats.degree_histogram.at(1), 2u);  // b and c
    EXPECT_EQ(stats.degree_histogram.at(2), 1u);  // a
}

TEST(NetworkStatsTest, EmptyWorld) {
    ledger::LedgerState state;
    const NetworkStats stats =
        compute_network_stats(state, std::vector<ledger::TxRecord>{});
    EXPECT_EQ(stats.accounts, 0u);
    EXPECT_DOUBLE_EQ(stats.mean_degree, 0.0);
}

TEST(GiniTest, KnownValues) {
    // Perfect equality.
    EXPECT_NEAR(gini({1, 1, 1, 1}), 0.0, 1e-12);
    // Total concentration approaches (n-1)/n.
    EXPECT_NEAR(gini({0, 0, 0, 100}), 0.75, 1e-12);
    // A textbook example: {1,2,3,4} -> 0.25.
    EXPECT_NEAR(gini({1, 2, 3, 4}), 0.25, 1e-12);
}

TEST(GiniTest, DegenerateInputs) {
    EXPECT_DOUBLE_EQ(gini({}), 0.0);
    EXPECT_DOUBLE_EQ(gini({5.0}), 0.0);
    EXPECT_DOUBLE_EQ(gini({0.0, 0.0}), 0.0);
    // Negative weights are dropped, not propagated.
    EXPECT_NEAR(gini({-3.0, 1.0, 1.0}), 0.0, 1e-12);
}

TEST(GiniTest, ScaleInvariant) {
    const double base = gini({1, 5, 9, 22, 60});
    EXPECT_NEAR(gini({10, 50, 90, 220, 600}), base, 1e-12);
}

}  // namespace
}  // namespace xrpl::analytics
