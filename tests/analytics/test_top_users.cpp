#include "analytics/top_users.hpp"

#include <gtest/gtest.h>

namespace xrpl::analytics {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;

const Currency kUsd = Currency::from_code("USD");

TEST(TopUsersTest, RanksByIntermediateAppearances) {
    ledger::LedgerState state;
    const AccountID gw = AccountID::from_seed("gw");
    const AccountID hub = AccountID::from_seed("hub");
    const AccountID minor = AccountID::from_seed("minor");
    state.create_account(gw, {}, true);
    state.create_account(hub, {});
    state.create_account(minor, {});

    std::unordered_map<AccountID, std::uint64_t> counts;
    counts[gw] = 1000;
    counts[hub] = 5000;
    counts[minor] = 10;

    const auto rate = [](Currency) { return 1.0; };
    const auto label = [](const AccountID& id) { return id.short_display(); };
    const auto top = top_intermediaries(counts, state, 2, rate, label);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].account, hub);
    EXPECT_EQ(top[0].times_intermediate, 5000u);
    EXPECT_FALSE(top[0].is_gateway);
    EXPECT_EQ(top[1].account, gw);
    EXPECT_TRUE(top[1].is_gateway);
}

TEST(TopUsersTest, TrustAndBalanceProfiles) {
    ledger::LedgerState state;
    const AccountID gw = AccountID::from_seed("gw");
    const AccountID user = AccountID::from_seed("user");
    state.create_account(gw, {}, true);
    state.create_account(user, {});
    // The user trusts the gateway and holds a deposit: the gateway's
    // profile must show received trust and a negative balance.
    ledger::TrustLine& line =
        state.set_trust(user, gw, kUsd, IouAmount::from_double(1000.0));
    ASSERT_TRUE(line.transfer_from(gw, IouAmount::from_double(400.0)));

    std::unordered_map<AccountID, std::uint64_t> counts;
    counts[gw] = 10;
    counts[user] = 5;

    const auto rate = [](Currency) { return 1.0; };
    const auto label = [](const AccountID& id) { return id.short_display(); };
    const auto top = top_intermediaries(counts, state, 10, rate, label);
    ASSERT_EQ(top.size(), 2u);
    const TopUser& gateway_row = top[0].account == gw ? top[0] : top[1];
    const TopUser& user_row = top[0].account == gw ? top[1] : top[0];
    EXPECT_NEAR(gateway_row.trust_received, 1000.0, 1e-9);
    EXPECT_NEAR(gateway_row.trust_given, 0.0, 1e-9);
    EXPECT_NEAR(gateway_row.balance, -400.0, 1e-9);   // gateways owe
    EXPECT_NEAR(user_row.balance, 400.0, 1e-9);       // users hold credit
    EXPECT_NEAR(user_row.trust_given, 1000.0, 1e-9);
}

TEST(TopUsersTest, CoverageOfTop) {
    std::unordered_map<AccountID, std::uint64_t> counts;
    counts[AccountID::from_seed("a")] = 86;
    counts[AccountID::from_seed("b")] = 10;
    counts[AccountID::from_seed("c")] = 4;
    EXPECT_NEAR(coverage_of_top(counts, 1), 0.86, 1e-9);
    EXPECT_NEAR(coverage_of_top(counts, 2), 0.96, 1e-9);
    EXPECT_NEAR(coverage_of_top(counts, 10), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(coverage_of_top({}, 5), 0.0);
}

TEST(TopUsersTest, KLargerThanPopulation) {
    std::unordered_map<AccountID, std::uint64_t> counts;
    counts[AccountID::from_seed("a")] = 1;
    ledger::LedgerState state;
    state.create_account(AccountID::from_seed("a"), {});
    const auto rate = [](Currency) { return 1.0; };
    const auto label = [](const AccountID& id) { return id.short_display(); };
    EXPECT_EQ(top_intermediaries(counts, state, 50, rate, label).size(), 1u);
}

}  // namespace
}  // namespace xrpl::analytics
