#include "consensus/robustness.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace xrpl::consensus {
namespace {

ConsensusConfig short_config() {
    ConsensusConfig config;
    config.rounds = 2'000;
    config.seed = 77;
    config.start_time = util::from_calendar(2015, 12, 1);
    return config;
}

TEST(TakeoverTest, SweepDegradesMonotonically) {
    const PeriodSpec period = december_2015();
    const auto sweep = takeover_sweep(period, short_config(), 3);
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_EQ(sweep[0].compromised, 0u);
    // Unattacked close rate is high.
    EXPECT_GT(sweep[0].close_rate(), 0.9);
    // Each additional compromised validator can only hurt.
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_LE(sweep[i].close_rate(), sweep[i - 1].close_rate() + 0.02)
            << "k=" << i;
    }
}

TEST(TakeoverTest, CompromisingTwoOfFiveCoresHaltsTheSystem) {
    // Quorum is ceil(0.8 * 5) = 4: with 2 cores down only 3 can vote.
    const PeriodSpec period = december_2015();
    const auto sweep = takeover_sweep(period, short_config(), 2);
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_DOUBLE_EQ(sweep[2].close_rate(), 0.0);
}

TEST(TakeoverTest, SweepCapsAtUnlSize) {
    const PeriodSpec period = december_2015();  // 5 UNL members
    const auto sweep = takeover_sweep(period, short_config(), 50);
    EXPECT_EQ(sweep.size(), 6u);  // 0..5
    EXPECT_DOUBLE_EQ(sweep.back().close_rate(), 0.0);
}

TEST(CloseProbabilityTest, KnownValues) {
    // 5 validators at availability 1.0: always closes.
    EXPECT_DOUBLE_EQ(close_probability(5, 1.0, 0.8), 1.0);
    // Availability 0: never.
    EXPECT_DOUBLE_EQ(close_probability(5, 0.0, 0.8), 0.0);
    // n=5, quorum 0.8 -> need 4 of 5 up: P = 5 p^4 (1-p) + p^5.
    const double p = 0.9;
    const double expected = 5 * std::pow(p, 4) * (1 - p) + std::pow(p, 5);
    EXPECT_NEAR(close_probability(5, p, 0.8), expected, 1e-12);
}

TEST(CloseProbabilityTest, MoreValidatorsMoreRobustAtFixedAvailability) {
    const double a = 0.95;
    EXPECT_LT(close_probability(5, a, 0.8), close_probability(50, a, 0.8));
    EXPECT_GT(close_probability(50, a, 0.8), 0.999);
}

TEST(CloseProbabilityTest, AfterTakeoverNeedsSurvivorsAboveQuorum) {
    // 10 validators, 3 compromised: need 8 of the 7 survivors -> 0.
    EXPECT_DOUBLE_EQ(close_probability_after_takeover(10, 3, 1.0, 0.8), 0.0);
    // 50 validators, 8 compromised: need 40 of 42 survivors.
    EXPECT_GT(close_probability_after_takeover(50, 8, 0.99, 0.8), 0.5);
    // Degenerate inputs.
    EXPECT_DOUBLE_EQ(close_probability_after_takeover(0, 0, 0.9, 0.8), 0.0);
    EXPECT_DOUBLE_EQ(close_probability_after_takeover(5, 5, 0.9, 0.8), 0.0);
}

TEST(RewardTest, ProfitGrowsThePopulation) {
    RewardPolicy policy;
    policy.reward_per_epoch = 10'000.0;     // generous tax pool
    policy.operating_cost_per_epoch = 400.0;
    policy.initial_validators = 5;
    const auto trajectory =
        simulate_reward_adoption(policy, 40, util::RngStream(1));
    ASSERT_EQ(trajectory.size(), 40u);
    EXPECT_EQ(trajectory.front().validators, 5u);
    EXPECT_GT(trajectory.back().validators, 15u);
    // Takeover robustness grows with the population: today's 5
    // validators fail under an 8-validator takeover; the grown set
    // survives it.
    EXPECT_DOUBLE_EQ(trajectory.front().close_rate_under_takeover_of_8, 0.0);
    EXPECT_GT(trajectory.back().close_rate_under_takeover_of_8, 0.3);
}

TEST(RewardTest, PopulationStabilizesNearBreakEven) {
    RewardPolicy policy;
    policy.reward_per_epoch = 4'000.0;
    policy.operating_cost_per_epoch = 400.0;
    policy.initial_validators = 5;
    const auto trajectory =
        simulate_reward_adoption(policy, 200, util::RngStream(2));
    // Income per validator = 4000*5/n; break-even at n = 50.
    const std::size_t final_count = trajectory.back().validators;
    EXPECT_GT(final_count, 30u);
    EXPECT_LT(final_count, 80u);
    // Income at the end is near the operating cost.
    EXPECT_NEAR(trajectory.back().income_per_validator, 400.0, 200.0);
}

TEST(RewardTest, NoRewardNoGrowth) {
    RewardPolicy policy;
    policy.reward_per_epoch = 100.0;  // below cost from the start
    policy.operating_cost_per_epoch = 400.0;
    policy.initial_validators = 5;
    const auto trajectory =
        simulate_reward_adoption(policy, 50, util::RngStream(3));
    // The original core never leaves; nobody joins.
    for (const RewardEpoch& epoch : trajectory) {
        EXPECT_EQ(epoch.validators, 5u);
    }
}

TEST(RewardTest, DeterministicForSeed) {
    RewardPolicy policy;
    const auto a = simulate_reward_adoption(policy, 60, util::RngStream(9));
    const auto b = simulate_reward_adoption(policy, 60, util::RngStream(9));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].validators, b[i].validators);
    }
}

}  // namespace
}  // namespace xrpl::consensus
