#include "consensus/monitor.hpp"

#include <gtest/gtest.h>

#include "consensus/period_config.hpp"
#include "consensus/rpca.hpp"

namespace xrpl::consensus {
namespace {

ledger::Hash256 page(int i) {
    ledger::Hash256 h;
    h.bytes[0] = static_cast<std::uint8_t>(i);
    h.bytes[1] = static_cast<std::uint8_t>(i >> 8);
    return h;
}

std::vector<Validator> two_validators() {
    std::vector<Validator> out;
    for (int i = 0; i < 2; ++i) {
        Validator v;
        v.index = static_cast<std::uint32_t>(i);
        v.spec.label = "v" + std::to_string(i);
        v.spec.behavior = i == 0 ? ValidatorBehavior::kCore
                                 : ValidatorBehavior::kForked;
        v.node_key = derive_node_key(v.spec.label);
        out.push_back(std::move(v));
    }
    return out;
}

TEST(MonitorTest, CreditsValidationWhenPageCloses) {
    const auto validators = two_validators();
    ValidationMonitor monitor(validators);
    monitor.on_validation(ValidationMessage{1, 0, page(1)});
    monitor.on_page(PageClosed{1, ChainTag::kMain, page(1)});
    const auto report = monitor.report();
    ASSERT_EQ(report.size(), 2u);
    const auto& v0 = report[0].label == "v0" ? report[0] : report[1];
    EXPECT_EQ(v0.total_pages, 1u);
    EXPECT_EQ(v0.valid_pages, 1u);
}

TEST(MonitorTest, DivergentSignatureNeverValid) {
    const auto validators = two_validators();
    ValidationMonitor monitor(validators);
    monitor.on_validation(ValidationMessage{1, 1, page(99)});
    monitor.on_page(PageClosed{1, ChainTag::kMain, page(1)});
    const auto report = monitor.report();
    const auto& v1 = report[0].label == "v1" ? report[0] : report[1];
    EXPECT_EQ(v1.total_pages, 1u);
    EXPECT_EQ(v1.valid_pages, 0u);
}

TEST(MonitorTest, TestnetPagesDoNotCountAsValid) {
    const auto validators = two_validators();
    ValidationMonitor monitor(validators);
    monitor.on_validation(ValidationMessage{1, 0, page(5)});
    monitor.on_page(PageClosed{1, ChainTag::kTestnet, page(5)});
    const auto report = monitor.report();
    const auto& v0 = report[0].label == "v0" ? report[0] : report[1];
    EXPECT_EQ(v0.total_pages, 1u);
    EXPECT_EQ(v0.valid_pages, 0u);
}

TEST(MonitorTest, PendingWindowExpiresStaleSignatures) {
    const auto validators = two_validators();
    ValidationMonitor monitor(validators, /*pending_window_rounds=*/2);
    monitor.on_validation(ValidationMessage{1, 0, page(1)});
    // Rounds pass without the page closing.
    monitor.on_validation(ValidationMessage{10, 1, page(2)});
    EXPECT_EQ(monitor.pending_size(), 1u);  // page(1) expired
    // A late close of the expired page credits nobody.
    monitor.on_page(PageClosed{10, ChainTag::kMain, page(1)});
    const auto report = monitor.report();
    const auto& v0 = report[0].label == "v0" ? report[0] : report[1];
    EXPECT_EQ(v0.valid_pages, 0u);
}

TEST(MonitorTest, UnknownValidatorIndexIgnored) {
    const auto validators = two_validators();
    ValidationMonitor monitor(validators);
    monitor.on_validation(ValidationMessage{1, 99, page(1)});
    const auto report = monitor.report();
    EXPECT_EQ(report[0].total_pages + report[1].total_pages, 0u);
}

TEST(MonitorTest, ReportSortedByLabel) {
    const auto validators = two_validators();
    ValidationMonitor monitor(validators);
    const auto report = monitor.report();
    ASSERT_EQ(report.size(), 2u);
    EXPECT_LE(report[0].label, report[1].label);
    EXPECT_EQ(report[0].node_key.front(), 'n');
}

TEST(MonitorTest, EndToEndWithSimulation) {
    // Full integration: the December 2015 population at tiny scale.
    const PeriodSpec period = december_2015();
    ConsensusSimulation sim(period.validators,
                            two_week_config(0.004, util::RngStream(11)));
    ValidationStream stream;
    ValidationMonitor monitor(sim.validators());
    monitor.attach(stream);
    const ConsensusStats stats = sim.run(stream);

    EXPECT_GT(stats.main_pages_closed, 0u);
    const auto report = monitor.report();
    ASSERT_EQ(report.size(), period.validators.size());

    std::uint64_t core_valid = 0;
    std::uint64_t forked_valid = 0;
    std::uint64_t forked_total = 0;
    std::uint64_t laggard_valid = 0;
    std::uint64_t laggard_total = 0;
    for (const ValidatorReport& r : report) {
        switch (r.behavior) {
            case ValidatorBehavior::kCore:
                core_valid += r.valid_pages;
                break;
            case ValidatorBehavior::kForked:
                forked_valid += r.valid_pages;
                forked_total += r.total_pages;
                break;
            case ValidatorBehavior::kLaggard:
                laggard_valid += r.valid_pages;
                laggard_total += r.total_pages;
                break;
            default:
                break;
        }
    }
    // Cores validate nearly everything; forks sign plenty but none
    // valid; laggards show the paper's "very small fraction".
    EXPECT_GT(core_valid, 0u);
    EXPECT_EQ(forked_valid, 0u);
    EXPECT_GT(forked_total, 0u);
    EXPECT_GT(laggard_total, 0u);
    EXPECT_LT(static_cast<double>(laggard_valid),
              0.5 * static_cast<double>(laggard_total));
}

TEST(MonitorTest, ActiveCountFindsTheActiveSubset) {
    const PeriodSpec period = december_2015();
    ConsensusSimulation sim(period.validators,
                            two_week_config(0.004, util::RngStream(13)));
    ValidationStream stream;
    ValidationMonitor monitor(sim.validators());
    monitor.attach(stream);
    sim.run(stream);
    // R1-R5 plus the 4 actives (n9KsiC at availability 0.55 clears
    // the 50% bar).
    EXPECT_EQ(monitor.active_count(0.5), 9u);
}

}  // namespace
}  // namespace xrpl::consensus
