#include "consensus/rpca.hpp"

#include <gtest/gtest.h>

#include "consensus/period_config.hpp"

namespace xrpl::consensus {
namespace {

ValidatorSpec spec(const std::string& label, ValidatorBehavior behavior,
                   bool on_unl = false, double availability = -1.0) {
    ValidatorSpec v;
    v.label = label;
    v.behavior = behavior;
    v.on_unl = on_unl;
    v.availability = availability;
    return v;
}

ConsensusConfig small_config(std::uint64_t rounds, std::uint64_t seed = 7) {
    ConsensusConfig config;
    config.rounds = rounds;
    config.seed = seed;
    config.start_time = util::from_calendar(2015, 12, 1);
    return config;
}

TEST(ValidatorTest, NodeKeyIsDeterministicAndNPrefixed) {
    const std::string key = derive_node_key("bougalis.net");
    EXPECT_EQ(key, derive_node_key("bougalis.net"));
    EXPECT_NE(key, derive_node_key("other.net"));
    EXPECT_EQ(key.front(), 'n');
}

TEST(ValidatorTest, BehaviorDefaultsAreOrdered) {
    EXPECT_GT(default_availability(ValidatorBehavior::kCore),
              default_availability(ValidatorBehavior::kLaggard));
    EXPECT_GT(default_availability(ValidatorBehavior::kLaggard),
              default_availability(ValidatorBehavior::kIdler));
    EXPECT_EQ(default_sync_probability(ValidatorBehavior::kForked), 0.0);
    EXPECT_EQ(default_sync_probability(ValidatorBehavior::kTestnet), 0.0);
    EXPECT_EQ(default_sync_probability(ValidatorBehavior::kCore), 1.0);
}

TEST(ValidatorTest, SpecOverridesBeatDefaults) {
    Validator v;
    v.spec = spec("x", ValidatorBehavior::kActive, false, 0.123);
    EXPECT_DOUBLE_EQ(v.availability(), 0.123);
    v.spec.availability = -1.0;
    EXPECT_DOUBLE_EQ(v.availability(), default_availability(ValidatorBehavior::kActive));
}

TEST(ConsensusTest, HealthyUnlClosesEveryRound) {
    std::vector<ValidatorSpec> validators;
    for (int i = 0; i < 5; ++i) {
        ValidatorSpec v = spec("core-" + std::to_string(i),
                               ValidatorBehavior::kCore, true);
        v.availability = 1.0;
        validators.push_back(v);
    }
    ConsensusSimulation sim(validators, small_config(500));
    ValidationStream stream;
    const ConsensusStats stats = sim.run(stream);
    EXPECT_EQ(stats.main_pages_closed, 500u);
    EXPECT_EQ(stats.main_rounds_failed, 0u);
    EXPECT_EQ(sim.main_chain().size(), 500u);
    EXPECT_EQ(sim.main_chain().verify_chain(), 500u);
}

TEST(ConsensusTest, QuorumFailureWhenUnlMostlyDown) {
    std::vector<ValidatorSpec> validators;
    // 5 UNL validators but only 1 ever shows up: 1/5 < 80%.
    for (int i = 0; i < 5; ++i) {
        ValidatorSpec v = spec("v-" + std::to_string(i),
                               ValidatorBehavior::kCore, true);
        v.availability = i == 0 ? 1.0 : 0.0;
        validators.push_back(v);
    }
    ConsensusSimulation sim(validators, small_config(100));
    ValidationStream stream;
    const ConsensusStats stats = sim.run(stream);
    EXPECT_EQ(stats.main_pages_closed, 0u);
    EXPECT_EQ(stats.main_rounds_failed, 100u);
}

TEST(ConsensusTest, EightyPercentQuorumBoundary) {
    // Exactly 4 of 5 available: 80% met every round.
    std::vector<ValidatorSpec> validators;
    for (int i = 0; i < 5; ++i) {
        ValidatorSpec v = spec("v-" + std::to_string(i),
                               ValidatorBehavior::kCore, true);
        v.availability = i < 4 ? 1.0 : 0.0;
        validators.push_back(v);
    }
    ConsensusSimulation sim(validators, small_config(200));
    ValidationStream stream;
    EXPECT_EQ(sim.run(stream).main_pages_closed, 200u);

    // 3 of 5 fails the 80% rule.
    validators[3].availability = 0.0;
    ConsensusSimulation sim2(validators, small_config(200));
    ValidationStream stream2;
    EXPECT_EQ(sim2.run(stream2).main_pages_closed, 0u);
}

TEST(ConsensusTest, NonUnlValidatorsDoNotCountTowardQuorum) {
    std::vector<ValidatorSpec> validators;
    // A single always-on UNL member: quorum = ceil(0.8*1) = 1.
    ValidatorSpec core = spec("core", ValidatorBehavior::kCore, true);
    core.availability = 1.0;
    validators.push_back(core);
    // Plenty of forked non-UNL validators cannot block it.
    for (int i = 0; i < 20; ++i) {
        validators.push_back(
            spec("forked-" + std::to_string(i), ValidatorBehavior::kForked));
    }
    ConsensusSimulation sim(validators, small_config(100));
    ValidationStream stream;
    EXPECT_EQ(sim.run(stream).main_pages_closed, 100u);
}

TEST(ConsensusTest, TestnetRunsItsOwnChain) {
    std::vector<ValidatorSpec> validators;
    for (int i = 0; i < 5; ++i) {
        ValidatorSpec v = spec("core-" + std::to_string(i),
                               ValidatorBehavior::kCore, true);
        v.availability = 1.0;
        validators.push_back(v);
    }
    for (int i = 0; i < 5; ++i) {
        ValidatorSpec v = spec("testnet-" + std::to_string(i),
                               ValidatorBehavior::kTestnet);
        v.availability = 1.0;
        validators.push_back(v);
    }
    ConsensusSimulation sim(validators, small_config(300));
    ValidationStream stream;
    const ConsensusStats stats = sim.run(stream);
    EXPECT_EQ(stats.main_pages_closed, 300u);
    EXPECT_EQ(stats.testnet_pages_closed, 300u);
    // The two chains never share a page hash.
    EXPECT_EQ(sim.main_chain().size(), 300u);
    EXPECT_EQ(sim.testnet_chain().size(), 300u);
    EXPECT_NE(sim.main_chain().last().hash, sim.testnet_chain().last().hash);
}

TEST(ConsensusTest, StreamSeesEveryValidation) {
    std::vector<ValidatorSpec> validators;
    for (int i = 0; i < 3; ++i) {
        ValidatorSpec v = spec("v-" + std::to_string(i),
                               ValidatorBehavior::kCore, true);
        v.availability = 1.0;
        validators.push_back(v);
    }
    ConsensusSimulation sim(validators, small_config(50));
    ValidationStream stream;
    std::uint64_t seen = 0;
    stream.subscribe_validations([&](const ValidationMessage&) { ++seen; });
    sim.run(stream);
    EXPECT_EQ(seen, 150u);  // 3 validators x 50 rounds
    EXPECT_EQ(stream.validations_published(), 150u);
    EXPECT_EQ(stream.pages_published(), 50u);
}

TEST(ConsensusTest, DeterministicForSameSeed) {
    const auto run_once = [] {
        std::vector<ValidatorSpec> validators;
        for (int i = 0; i < 4; ++i) {
            validators.push_back(spec("v-" + std::to_string(i),
                                      ValidatorBehavior::kActive, true));
        }
        ConsensusSimulation sim(validators, small_config(200, 42));
        ValidationStream stream;
        sim.run(stream);
        return sim.main_chain().size();
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(ConsensusTest, RunRoundSealsTransactionIds) {
    std::vector<ValidatorSpec> validators;
    for (int i = 0; i < 5; ++i) {
        ValidatorSpec v = spec("v-" + std::to_string(i),
                               ValidatorBehavior::kCore, true);
        v.availability = 1.0;
        validators.push_back(v);
    }
    ConsensusSimulation sim(validators, small_config(10));
    ValidationStream stream;

    ledger::Hash256 tx;
    tx.bytes[0] = 0x42;
    const RoundOutcome first =
        sim.run_round(1, util::RippleTime{100}, {tx}, stream);
    EXPECT_TRUE(first.main_closed);
    ASSERT_EQ(sim.main_chain().size(), 1u);
    ASSERT_EQ(sim.main_chain().last().tx_ids.size(), 1u);
    EXPECT_EQ(sim.main_chain().last().tx_ids[0], tx);
    EXPECT_EQ(sim.main_chain().last().hash, first.main_page);

    // Cumulative stats accrue across driven rounds.
    const RoundOutcome second =
        sim.run_round(2, util::RippleTime{105}, {}, stream);
    EXPECT_TRUE(second.main_closed);
    EXPECT_EQ(sim.main_chain().size(), 2u);
    EXPECT_EQ(sim.main_chain().verify_chain(), 2u);
    EXPECT_NE(second.main_page, first.main_page);
}

TEST(ConsensusTest, DifferentTxSetsProduceDifferentCandidates) {
    const auto run_with = [](std::uint8_t marker) {
        std::vector<ValidatorSpec> validators;
        ValidatorSpec v = spec("core", ValidatorBehavior::kCore, true);
        v.availability = 1.0;
        validators.push_back(v);
        ConsensusSimulation sim(validators, small_config(1));
        ValidationStream stream;
        ledger::Hash256 tx;
        tx.bytes[0] = marker;
        return sim.run_round(1, util::RippleTime{100}, {tx}, stream).main_page;
    };
    EXPECT_NE(run_with(1), run_with(2));
}

TEST(PeriodConfigTest, PeriodsMatchPaperPopulations) {
    const PeriodSpec dec = december_2015();
    // 5 cores + 29 others.
    EXPECT_EQ(dec.validators.size(), 34u);

    const PeriodSpec jul = july_2016();
    EXPECT_EQ(jul.validators.size(), 33u);  // 5 cores + 28 observed

    const PeriodSpec nov = november_2016();
    EXPECT_EQ(nov.validators.size(), 39u);  // 5 cores + 34 observed

    EXPECT_EQ(all_periods().size(), 3u);
}

TEST(PeriodConfigTest, NineSharedActiveContributors) {
    // "the three periods share only 9 (over a total of 70 validators
    // seen) that appear in each of them as active contributors".
    const auto is_active = [](const ValidatorSpec& v) {
        return (v.behavior == ValidatorBehavior::kCore ||
                v.behavior == ValidatorBehavior::kActive) &&
               (v.availability < 0 || v.availability > 0.5);
    };
    std::vector<std::string> shared;
    for (const ValidatorSpec& v : december_2015().validators) {
        if (!is_active(v)) continue;
        const auto in_period = [&](const PeriodSpec& p) {
            for (const ValidatorSpec& w : p.validators) {
                if (w.label == v.label && is_active(w)) return true;
            }
            return false;
        };
        if (in_period(july_2016()) && in_period(november_2016())) {
            shared.push_back(v.label);
        }
    }
    EXPECT_EQ(shared.size(), 9u);
}

TEST(PeriodConfigTest, TwoWeekConfigScales) {
    const util::RngStream stream(1);
    const ConsensusConfig full = two_week_config(1.0, stream);
    EXPECT_EQ(full.rounds, 252'000u);
    const ConsensusConfig tenth = two_week_config(0.1, stream);
    EXPECT_EQ(tenth.rounds, 25'200u);
    EXPECT_DOUBLE_EQ(tenth.quorum, 0.80);
}

}  // namespace
}  // namespace xrpl::consensus
