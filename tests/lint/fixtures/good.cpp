// Lint fixture: a clean file — the linter must report nothing here.
#include <cstdint>
#include <vector>

namespace fixture {

constexpr std::uint64_t kExampleDomain = 0x1234;

struct Hasher {
    std::uint64_t state = 0;
    void mix(std::uint64_t value) { state ^= value; }
};

inline std::uint64_t tagged_fold(std::uint64_t mantissa,
                                 std::uint64_t exponent) {
    Hasher hasher;
    hasher.mix(mantissa ^ kExampleDomain);
    hasher.mix(exponent);
    return hasher.state;
}

inline std::vector<int> empty_vector() { return {}; }

}  // namespace fixture
