// Fixture: ad-hoc wall-clock timing outside src/obs (no-adhoc-timing).
// Durations flow through obs::Stopwatch so they land in the metrics
// registry instead of being printed and lost.
#include <chrono>

long bad_timing() {
    const auto start = std::chrono::steady_clock::now();
    const auto wall = std::chrono::system_clock::now().time_since_epoch();
    const auto end = std::chrono::high_resolution_clock::now();
    return (end - start).count() + wall.count();
}
