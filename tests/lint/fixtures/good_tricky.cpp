// Tokenizer edge cases the line-regex linter used to trip over. This
// fixture must lint CLEAN: every apparent violation below lives inside
// a comment or a string literal.
#include <string>

/*
#include <zzz_unsorted.hpp>
#include "totally/../bogus.hpp"
int r = rand();
*/

namespace lint_fixture {

// rand() and atoi( in prose — a comment, not a call.
inline std::string tricky() {
    // The raw string below contains an #include directive, a quote,
    // and a rand() call; none of it is code.
    return R"lint(
#include <aaa_should_sort_first.hpp>
const char* s = "quoted \" mid";
int x = rand();
)lint";
}

}  // namespace lint_fixture
