// Lint fixture: ad-hoc util::Rng constructions that bypass the
// RngStream derivation tree. Only the marked lines may fire — the
// sanctioned forms below them prove the rule doesn't cry wolf.
#include "util/rng.hpp"

namespace fixture {

inline std::uint64_t bad_draws() {
    util::Rng adhoc(42);   // fires: seeded out of thin air
    util::Rng braced{43};  // fires: brace form
    std::uint64_t sum = adhoc.next() + braced.next();
    sum += util::Rng(44).next();  // fires: unnamed temporary
    return sum;
}

inline std::uint64_t sanctioned_draws(const util::RngStream& stream,
                                      util::Rng& shared) {
    util::Rng derived = stream.derive("fixture").rng();
    util::Rng annotated(7);  // rng-root — deliberate tree root
    return derived.next() + shared.next() + annotated.next();
}

struct Holder {
    util::Rng rng_ = util::RngStream(0).rng();
    util::Rng* borrowed_ = nullptr;
};

}  // namespace fixture
