// Lint fixture: naked rand() outside util/rng. Must trigger [no-rand].
#include <cstdlib>

int roll_die() {
    // std::rand() mentioned in a comment must NOT trigger.
    return std::rand() % 6 + 1;
}
