// Lint fixture: directory-climbing include plus an unsorted include
// block. Must trigger [include-order].
#include "../fixtures/good.cpp"

#include <vector>
#include <cstdint>

int count_items() { return 0; }
