// Lint fixture: a fingerprint fold whose first mix() carries no field
// domain tag — two feature subsets could collide structurally. Must
// trigger [fingerprint-domain].
#include <cstdint>

struct Hasher {
    std::uint64_t state = 0;
    void mix(std::uint64_t value) { state ^= value * 0x9e3779b97f4a7c15ULL; }
};

std::uint64_t untagged_fold(std::uint64_t mantissa, std::uint64_t exponent) {
    Hasher hasher;
    hasher.mix(mantissa);
    hasher.mix(exponent);
    return hasher.state;
}
