// Lint fixture: a header with no include guard that also dumps a
// namespace on every includer. Must trigger [pragma-once] and
// [no-using-namespace].
#include <vector>

using namespace std;

inline vector<int> empty_vector() { return {}; }
