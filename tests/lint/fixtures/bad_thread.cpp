// Fixture: raw threading primitives outside src/exec (no-raw-thread).
// Scans must run on exec::ThreadPool, whose ordered chunk merge keeps
// results independent of the thread count.
#include <future>
#include <thread>

int bad_thread() {
    std::thread worker([] {});
    auto pending = std::async([] { return 1; });
    worker.join();
    return pending.get();
}
