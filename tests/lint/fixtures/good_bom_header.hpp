﻿// This header opens with a UTF-8 BOM and a comment before the
// directive — [pragma-once] must still see the genuine #pragma once.
#pragma once

namespace lint_fixture {
inline int bom_ok() { return 1; }
}  // namespace lint_fixture
