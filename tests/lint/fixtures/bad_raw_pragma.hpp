// The ONLY "#pragma once" in this header is inside a raw string — the
// tokenizer-backed [pragma-once] rule must still flag the file.

namespace lint_fixture {
inline const char* fake_guard() {
    return R"(#pragma once)";
}
}  // namespace lint_fixture
