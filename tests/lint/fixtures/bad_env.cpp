// Fixture: direct environment reads outside src/util (no-adhoc-env).
// Every XRPL_* knob is declared once in util::Options; call sites read
// the typed field off util::options().
#include <cstdlib>

#include "util/env.hpp"

unsigned long long bad_env() {
    unsigned long long total = xrpl::util::env_u64("XRPL_THREADS", 4);
    if (xrpl::util::env_flag("XRPL_OBS", false)) ++total;
    if (xrpl::util::env_present("XRPL_BENCH_PAYMENTS")) ++total;
    if (std::getenv("XRPL_BENCH_JSON_DIR") != nullptr) ++total;
    return total;
}
