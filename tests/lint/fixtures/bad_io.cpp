// Fixture: raw file I/O outside src/util + src/snap (no-adhoc-io).
// Every byte on disk goes through util::file_io's audited helpers —
// atomic tmp+rename writes, whole-file reads — never ad-hoc streams.
#include <cstdio>
#include <fstream>
#include <string>

namespace lint_fixture {

// fopen("log.txt", "w") in prose stays legal — a comment, not a call.
inline std::string bad_io(const std::string& path) {
    std::ofstream out(path);          // violation: raw ofstream
    out << "half-written artifact";   // non-atomic publish
    std::ifstream in(path);           // violation: raw ifstream
    std::string text;
    in >> text;
    std::FILE* f = std::fopen(path.c_str(), "rb");  // violation: fopen
    if (f != nullptr) std::fclose(f);
    return text;
}

}  // namespace lint_fixture
