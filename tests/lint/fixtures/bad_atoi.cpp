// Lint fixture: atoi-family parsing. Must trigger [no-naked-atoi].
#include <cstdlib>

long parse_count(const char* text) {
    return atoll(text);
}
