// obs metrics: the enabled gate, striped-counter exactness under the
// shared pool, histogram bucketing, and registry identity.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace xrpl::obs {
namespace {

/// Every test leaves recording OFF (the process default) so suites
/// that run after this one see the unobserved fast path.
class ObsMetricsTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_enabled(true);
        reset_metrics();
    }
    void TearDown() override {
        reset_metrics();
        set_enabled(false);
    }
};

TEST_F(ObsMetricsTest, DisabledRecordingIsANoOp) {
    Counter& c = counter("test.metrics.disabled");
    Gauge& g = gauge("test.metrics.disabled_gauge");
    Histogram& h = histogram("test.metrics.disabled_hist");
    set_enabled(false);
    c.add();
    c.add(41);
    g.set(7);
    g.add(3);
    h.record(1234);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST_F(ObsMetricsTest, RegistryReturnsTheSameMetricPerName) {
    Counter& a = counter("test.metrics.identity");
    Counter& b = counter("test.metrics.identity");
    EXPECT_EQ(&a, &b);
    a.add(2);
    EXPECT_EQ(b.value(), 2u);
    EXPECT_NE(&a, &counter("test.metrics.identity2"));
}

TEST_F(ObsMetricsTest, CounterSumsStripesExactly) {
    Counter& c = counter("test.metrics.striped");
    // Concurrent adds from pool workers AND the participating caller:
    // the striped cells must add up exactly, never drop an increment.
    exec::ScopedParallelism pool(8);
    constexpr std::size_t kTasks = 10'000;
    exec::parallel_for(kTasks, 16, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) c.add();
    });
    EXPECT_EQ(c.value(), kTasks);
}

TEST_F(ObsMetricsTest, GaugeSetAddAndReset) {
    Gauge& g = gauge("test.metrics.gauge");
    g.set(5);
    g.add(-8);
    EXPECT_EQ(g.value(), -3);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST_F(ObsMetricsTest, HistogramBucketsByBitWidth) {
    Histogram& h = histogram("test.metrics.hist");
    h.record(0);     // bit_width 0
    h.record(1);     // bit_width 1
    h.record(2);     // bit_width 2: [2, 3]
    h.record(3);
    h.record(1000);  // bit_width 10: [512, 1023]
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1006u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.bucket(3), 0u);
}

TEST_F(ObsMetricsTest, HistogramBucketBounds) {
    EXPECT_EQ(Histogram::bucket_bound(0), 0u);   // only the value 0
    EXPECT_EQ(Histogram::bucket_bound(1), 1u);   // only the value 1
    EXPECT_EQ(Histogram::bucket_bound(2), 3u);   // [2, 3]
    EXPECT_EQ(Histogram::bucket_bound(10), 1023u);
    EXPECT_EQ(Histogram::bucket_bound(64),
              std::numeric_limits<std::uint64_t>::max());
}

TEST_F(ObsMetricsTest, ResetZeroesValuesButKeepsReferencesValid) {
    Counter& c = counter("test.metrics.reset");
    c.add(9);
    reset_metrics();
    EXPECT_EQ(c.value(), 0u);
    c.add(2);  // the cached reference still points at the live metric
    EXPECT_EQ(c.value(), 2u);
}

}  // namespace
}  // namespace xrpl::obs
