// obs snapshot/JSON: golden byte-exact serialization (metric values
// are chosen, so every byte is predictable), phase-tree shape, and the
// zero-omission rule that keeps the shape history-independent.
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/snapshot.hpp"

namespace xrpl::obs {
namespace {

class ObsSnapshotTest : public ::testing::Test {
protected:
    void SetUp() override {
        set_enabled(true);
        reset_all();
    }
    void TearDown() override {
        reset_all();
        set_enabled(false);
    }
};

TEST_F(ObsSnapshotTest, GoldenJson) {
    counter("zz.test.counter").add(3);
    gauge("zz.test.gauge").add(-2);
    histogram("zz.test.hist").record(1);
    histogram("zz.test.hist").record(1000);

    // Keys alphabetical at every level, metrics name-sorted, zero
    // metrics omitted, no whitespace: the exact byte stream.
    const std::string expected =
        "{\"counters\":{\"zz.test.counter\":3},"
        "\"enabled\":true,"
        "\"gauges\":{\"zz.test.gauge\":-2},"
        "\"histograms\":{\"zz.test.hist\":"
        "{\"buckets\":[[1,1],[1023,1]],\"count\":2,\"sum\":1001}},"
        "\"phases\":{\"children\":[],\"count\":0,\"name\":\"root\","
        "\"total_ns\":0}}";
    EXPECT_EQ(to_json(), expected);
}

TEST_F(ObsSnapshotTest, ZeroValuedMetricsAreOmitted) {
    // Registered but never incremented — must not appear in the JSON.
    (void)counter("zz.test.zero");
    (void)gauge("zz.test.zero_gauge");
    (void)histogram("zz.test.zero_hist");
    const Snapshot snap = snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(ObsSnapshotTest, SnapshotReportsDisabledState) {
    set_enabled(false);
    const std::string json = to_json();
    EXPECT_NE(json.find("\"enabled\":false"), std::string::npos);
}

TEST_F(ObsSnapshotTest, PhaseTreeNestsAndSortsChildren) {
    {
        const Phase outer("study");
        { const Phase inner("zeta"); }
        { const Phase inner("alpha"); }
        { const Phase inner("alpha"); }
    }
    const PhaseSnapshot root = phase_snapshot();
    ASSERT_EQ(root.children.size(), 1u);
    const PhaseSnapshot& study = root.children[0];
    EXPECT_EQ(study.name, "study");
    EXPECT_EQ(study.count, 1u);
    ASSERT_EQ(study.children.size(), 2u);
    // Children are name-sorted, never entry-ordered.
    EXPECT_EQ(study.children[0].name, "alpha");
    EXPECT_EQ(study.children[0].count, 2u);
    EXPECT_EQ(study.children[1].name, "zeta");
    EXPECT_EQ(study.children[1].count, 1u);
    // Wall time accumulates upward: the parent covers its children.
    EXPECT_GE(study.total_ns,
              study.children[0].total_ns + study.children[1].total_ns);
}

TEST_F(ObsSnapshotTest, ResetWithOpenPhaseStaysCoherent) {
    {
        const Phase open("survivor");
        reset_all();  // drops the tree while `open` is still running
    }                 // closing re-resolves its path into a fresh node
    const PhaseSnapshot root = phase_snapshot();
    ASSERT_EQ(root.children.size(), 1u);
    EXPECT_EQ(root.children[0].name, "survivor");
    EXPECT_EQ(root.children[0].count, 1u);
}

TEST_F(ObsSnapshotTest, DisabledPhasesRecordNothing) {
    set_enabled(false);
    { const Phase phase("invisible"); }
    EXPECT_TRUE(phase_snapshot().children.empty());
}

}  // namespace
}  // namespace xrpl::obs
