#include "bench/harness.hpp"

#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/stopwatch.hpp"
#include "util/file_io.hpp"
#include "util/options.hpp"

namespace xrpl::bench {

namespace {

std::vector<BenchInfo>& registry() {
    static std::vector<BenchInfo> benches;
    return benches;
}

void print_header(const BenchInfo& info) {
    std::cout << "==========================================================\n"
              << info.display << " — " << info.title << "\n"
              << "==========================================================\n";
}

/// BENCH_<name>.json: {"bench": ..., "obs": {...}, "wall_seconds": ...}
/// — keys alphabetical here and (recursively) inside the obs snapshot,
/// so two runs of the same bench diff only in measured durations.
void write_report(const BenchInfo& info, double wall_seconds) {
    const std::string path = util::options().bench_json_dir + "/BENCH_" +
                             std::string(info.name) + ".json";
    std::ostringstream os;
    os << "{\"bench\":\"" << info.name << "\",\"obs\":";
    obs::write_json(os);
    os << ",\"wall_seconds\":" << std::setprecision(6) << std::fixed
       << wall_seconds << "}\n";
    if (!util::write_text_file(path, os.str())) {
        std::cerr << "warning: cannot write " << path << "\n";
        return;
    }
    // stderr, not stdout: a bench's stdout is its analytical output and
    // stays byte-identical whether or not recording (and so the report)
    // is enabled.
    std::cerr << "[report: " << path << "]\n";
}

}  // namespace

void register_bench(const BenchInfo& info) { registry().push_back(info); }

int harness_main(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--options") == 0) {
            std::cout << util::options_markdown();
            return 0;
        }
    }

    // Benches record by default — their whole point is a measured
    // report — but an explicit XRPL_OBS=0 still wins (that is how the
    // byte-parity acceptance run disables the layer).
    const util::Options& opts = util::options();
    obs::set_enabled(opts.obs_explicit ? opts.obs : true);

    int exit_code = 0;
    for (const BenchInfo& info : registry()) {
        obs::reset_all();  // the report covers this bench alone
        print_header(info);
        const obs::Stopwatch wall;
        const int code = info.run();
        const double wall_seconds = wall.elapsed_seconds();
        if (obs::enabled()) write_report(info, wall_seconds);
        if (code != 0 && exit_code == 0) exit_code = code;
    }
    return exit_code;
}

}  // namespace xrpl::bench
