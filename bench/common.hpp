// Shared setup for the figure/table reproduction benches.
//
// Three tiers of shared data, each built ONCE per process from the
// same fixed-seed config, so every bench in a binary — and every
// bench binary — sees the same mutually consistent, bit-stable
// payments. XRPL_BENCH_PAYMENTS scales the history (default 250,000
// payments, ~1/90 of the paper's 23M — all rates preserved).
//
//  * dataset_payments() — the columnar payment store only. Served
//    through the XRPL_DATASET_DIR snapshot cache (src/snap/): with
//    the cache primed, benches that scan payments skip generation
//    entirely. Most figure benches want exactly this.
//  * dataset_population() — the account roster + initial ledger,
//    regenerated cheaply (no payment workload) and byte-identical to
//    the population inside the full run.
//  * dataset() — the complete GeneratedHistory, for benches that
//    need streamed aggregates or the final ledger. Never cacheable:
//    the cache persists payments, not ledger state.
//
// Cache hit or miss, stdout is byte-identical — status lines mention
// only the config and the (deterministic) result counts.
#pragma once

#include <iostream>
#include <string>

#include "datagen/dataset.hpp"
#include "datagen/history.hpp"
#include "util/options.hpp"

namespace xrpl::bench {

inline datagen::GeneratorConfig default_history_config() {
    datagen::GeneratorConfig config;
    config.seed = 20130101;
    config.num_users = 8'000;
    config.num_gateways = 40;
    config.num_market_makers = 120;
    config.num_merchants = 500;
    config.num_hubs = 20;
    config.target_payments = util::options().bench_payments;
    return config;
}

inline void print_paper_note(const std::string& note) {
    std::cout << "paper: " << note << "\n";
}

/// The shared payment store: cache-or-generate via
/// datagen::load_or_generate_payments, built on first use.
inline const ledger::PaymentColumns& dataset_payments() {
    static const ledger::PaymentColumns columns = [] {
        const datagen::GeneratorConfig config = default_history_config();
        std::cout << "[dataset: " << config.target_payments
                  << " payments, seed " << config.seed << " ...]\n";
        ledger::PaymentColumns loaded =
            datagen::load_or_generate_payments(config);
        std::cout << "[ready: " << loaded.size() << " payments, "
                  << loaded.accounts.size() << " accounts, "
                  << loaded.currencies.size() << " currencies]\n\n";
        return loaded;
    }();
    return columns;
}

/// The shared population snapshot (roster + initial ledger), built on
/// first use. Pairs exactly with dataset_payments(): both derive from
/// default_history_config()'s seed.
inline const datagen::PopulationSnapshot& dataset_population() {
    static const datagen::PopulationSnapshot snapshot =
        datagen::generate_population_only(default_history_config());
    return snapshot;
}

/// The complete shared history, built on first use and reused by
/// every bench in the process. Benches that only scan payments should
/// prefer dataset_payments() — it can be served from the snapshot
/// cache; this never can.
inline const datagen::GeneratedHistory& dataset() {
    static const datagen::GeneratedHistory history = [] {
        const datagen::GeneratorConfig config = default_history_config();
        std::cout << "[generating history: " << config.target_payments
                  << " payments, seed " << config.seed << " ...]\n";
        datagen::GeneratedHistory generated = datagen::generate_history(config);
        std::cout << "[done: " << generated.payments.size()
                  << " payments over " << generated.pages << " ledger pages, "
                  << util::format_date(generated.first_close) << " .. "
                  << util::format_date(generated.last_close) << "]\n\n";
        return generated;
    }();
    return history;
}

}  // namespace xrpl::bench
