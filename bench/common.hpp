// Shared setup for the figure/table reproduction benches.
//
// Every bench regenerates the synthetic history from the same seed,
// so their outputs are mutually consistent and bit-stable across
// runs. XRPL_BENCH_PAYMENTS scales the history (default 250,000
// payments, ~1/90 of the paper's 23M — all rates preserved).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "datagen/history.hpp"

namespace xrpl::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    const long long parsed = std::atoll(value);
    return parsed > 0 ? static_cast<std::uint64_t>(parsed) : fallback;
}

inline datagen::GeneratorConfig default_history_config() {
    datagen::GeneratorConfig config;
    config.seed = 20130101;
    config.num_users = 8'000;
    config.num_gateways = 40;
    config.num_market_makers = 120;
    config.num_merchants = 500;
    config.num_hubs = 20;
    config.target_payments = env_u64("XRPL_BENCH_PAYMENTS", 250'000);
    return config;
}

inline void print_header(const std::string& id, const std::string& title) {
    std::cout << "==========================================================\n"
              << id << " — " << title << "\n"
              << "==========================================================\n";
}

inline void print_paper_note(const std::string& note) {
    std::cout << "paper: " << note << "\n";
}

inline datagen::GeneratedHistory generate_default_history() {
    const datagen::GeneratorConfig config = default_history_config();
    std::cout << "[generating history: " << config.target_payments
              << " payments, seed " << config.seed << " ...]\n";
    datagen::GeneratedHistory history = datagen::generate_history(config);
    std::cout << "[done: " << history.records.size() << " payments over "
              << history.pages << " ledger pages, "
              << util::format_date(history.first_close) << " .. "
              << util::format_date(history.last_close) << "]\n\n";
    return history;
}

}  // namespace xrpl::bench
