// Shared setup for the figure/table reproduction benches.
//
// The synthetic history is generated ONCE per process (see dataset())
// from a fixed seed, so every bench in a binary — and every bench
// binary — sees the same mutually consistent, bit-stable payments.
// XRPL_BENCH_PAYMENTS scales the history (default 250,000 payments,
// ~1/90 of the paper's 23M — all rates preserved).
#pragma once

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "datagen/history.hpp"

namespace xrpl::bench {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    std::uint64_t parsed = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, parsed);
    if (ec != std::errc{} || ptr != end || parsed == 0) {
        std::cerr << "warning: ignoring malformed " << name << "='" << value
                  << "' (expected a positive integer); using " << fallback
                  << "\n";
        return fallback;
    }
    return parsed;
}

inline datagen::GeneratorConfig default_history_config() {
    datagen::GeneratorConfig config;
    config.seed = 20130101;
    config.num_users = 8'000;
    config.num_gateways = 40;
    config.num_market_makers = 120;
    config.num_merchants = 500;
    config.num_hubs = 20;
    config.target_payments = env_u64("XRPL_BENCH_PAYMENTS", 250'000);
    return config;
}

inline void print_header(const std::string& id, const std::string& title) {
    std::cout << "==========================================================\n"
              << id << " — " << title << "\n"
              << "==========================================================\n";
}

inline void print_paper_note(const std::string& note) {
    std::cout << "paper: " << note << "\n";
}

/// The shared bench dataset, built on first use and reused by every
/// bench in the process.
inline const datagen::GeneratedHistory& dataset() {
    static const datagen::GeneratedHistory history = [] {
        const datagen::GeneratorConfig config = default_history_config();
        std::cout << "[generating history: " << config.target_payments
                  << " payments, seed " << config.seed << " ...]\n";
        datagen::GeneratedHistory generated = datagen::generate_history(config);
        std::cout << "[done: " << generated.payments.size()
                  << " payments over " << generated.pages << " ledger pages, "
                  << util::format_date(generated.first_close) << " .. "
                  << util::format_date(generated.last_close) << "]\n\n";
        return generated;
    }();
    return history;
}

}  // namespace xrpl::bench
