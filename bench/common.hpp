// Shared setup for the figure/table reproduction benches.
//
// The synthetic history is generated ONCE per process (see dataset())
// from a fixed seed, so every bench in a binary — and every bench
// binary — sees the same mutually consistent, bit-stable payments.
// XRPL_BENCH_PAYMENTS scales the history (default 250,000 payments,
// ~1/90 of the paper's 23M — all rates preserved).
#pragma once

#include <iostream>
#include <string>

#include "datagen/history.hpp"
#include "util/options.hpp"

namespace xrpl::bench {

inline datagen::GeneratorConfig default_history_config() {
    datagen::GeneratorConfig config;
    config.seed = 20130101;
    config.num_users = 8'000;
    config.num_gateways = 40;
    config.num_market_makers = 120;
    config.num_merchants = 500;
    config.num_hubs = 20;
    config.target_payments = util::options().bench_payments;
    return config;
}

inline void print_paper_note(const std::string& note) {
    std::cout << "paper: " << note << "\n";
}

/// The shared bench dataset, built on first use and reused by every
/// bench in the process.
inline const datagen::GeneratedHistory& dataset() {
    static const datagen::GeneratedHistory history = [] {
        const datagen::GeneratorConfig config = default_history_config();
        std::cout << "[generating history: " << config.target_payments
                  << " payments, seed " << config.seed << " ...]\n";
        datagen::GeneratedHistory generated = datagen::generate_history(config);
        std::cout << "[done: " << generated.payments.size()
                  << " payments over " << generated.pages << " ledger pages, "
                  << util::format_date(generated.first_close) << " .. "
                  << util::format_date(generated.last_close) << "]\n\n";
        return generated;
    }();
    return history;
}

}  // namespace xrpl::bench
