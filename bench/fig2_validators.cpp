// Fig 2 — total vs valid ledger pages signed by each validator,
// across the paper's three two-week collection periods.
//
// Runs the RPCA simulator over the December 2015 / July 2016 /
// November 2016 validator populations, collects the validation stream
// with the monitor (the paper's measurement server), and prints the
// per-validator bars. XRPL_BENCH_CONSENSUS_SCALE (percent of the full
// 252,000-round fortnight; default 10) trades runtime for scale —
// the bar *shape* is identical at any scale.
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "consensus/monitor.hpp"
#include "consensus/period_config.hpp"
#include "consensus/rpca.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/textplot.hpp"

namespace {

using namespace xrpl;

void run_period(const consensus::PeriodSpec& period, double scale,
                const util::RngStream& rng_stream) {
    consensus::ConsensusSimulation sim(
        period.validators, consensus::two_week_config(scale, rng_stream));
    consensus::ValidationStream stream;
    consensus::ValidationMonitor monitor(sim.validators());
    monitor.attach(stream);
    const consensus::ConsensusStats stats = sim.run(stream);

    std::cout << "--- " << period.name << " ---\n";
    std::cout << "rounds: " << util::format_count(stats.rounds)
              << "  main pages closed: "
              << util::format_count(stats.main_pages_closed)
              << "  failed rounds: "
              << util::format_count(stats.main_rounds_failed)
              << "  testnet pages: "
              << util::format_count(stats.testnet_pages_closed) << "\n";

    std::vector<util::Bar> bars;
    for (const consensus::ValidatorReport& report : monitor.report()) {
        util::Bar bar;
        bar.label = report.label + " [" +
                    consensus::behavior_name(report.behavior) + "]";
        bar.value = static_cast<double>(report.total_pages);
        bar.secondary = static_cast<double>(report.valid_pages);
        bars.push_back(std::move(bar));
    }
    util::BarChartOptions options;
    options.value_header = "total";
    options.secondary_header = "valid";
    options.width = 46;
    render_bar_chart(std::cout, bars, options);

    std::cout << "actively contributing (>=50% of a core validator's valid "
                 "pages): "
              << monitor.active_count(0.5) << " of "
              << period.validators.size() << " observed\n\n";
}

}  // namespace

XRPL_BENCH("fig2_validators", "Fig 2",
           "validator pages signed: total vs valid") {
    const double scale =
        static_cast<double>(util::options().bench_consensus_scale) / 100.0;
    std::cout << "(scale: " << scale * 100
              << "% of the full two-week capture; counts scale linearly)\n\n";

    // Per-period streams derived from one root: the periods stay
    // independent however they are ordered or interleaved (no seed+i
    // arithmetic to collide).
    const util::RngStream root(20151201);
    std::uint64_t index = 0;
    for (const consensus::PeriodSpec& period : consensus::all_periods()) {
        run_period(period, scale, root.derive("period", index++));
    }

    bench::print_paper_note(
        "Dec-15: R1-R5 dominate, 3-4 active independents, 5 laggards with a "
        "sliver of valid pages, ~20 validators with zero valid pages.");
    bench::print_paper_note(
        "Jul-16: 10 actives comparable to R1-R5; 5 testnet.ripple.com "
        "validators near full participation with zero valid pages.");
    bench::print_paper_note(
        "Nov-16: only 8 actives remain; freewallet1/2.net an order of "
        "magnitude down; one bougalis.net machine gone, the other ~15K "
        "rounds.");
    bench::print_paper_note(
        "only 9 validators appear in all three periods as active "
        "contributors.");
    return 0;
}
