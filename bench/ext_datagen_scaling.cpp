// Extension — datagen thread-scaling sweep.
//
// Generates the same history at pool widths 1/2/4/8 and reports
// payments per second at each width, as JSON (one object, stdout).
// The sharded generator must scale — the ISSUE's acceptance bar is
// >= 3x at 8 threads — while staying byte-identical at every width;
// the sweep asserts the identical part too (sizes + last close), so
// a perf regression can't hide behind a silent output drift.
//
// Knobs: XRPL_BENCH_DATAGEN_PAYMENTS (default 100,000) sizes the
// history; the slice width is fixed at target/16 so even the widest
// pool has two slices per worker to balance.
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "datagen/history.hpp"
#include "exec/thread_pool.hpp"
#include "obs/stopwatch.hpp"

XRPL_BENCH("ext_datagen_scaling", "Extension",
           "datagen thread-scaling sweep") {
    using namespace xrpl;

    const std::uint64_t target = util::options().bench_datagen_payments;
    datagen::GeneratorConfig config;
    config.seed = 20170605;
    config.num_users = 4'000;
    config.num_gateways = 30;
    config.num_market_makers = 80;
    config.num_merchants = 300;
    config.num_hubs = 15;
    config.target_payments = target;
    config.payments_per_slice = std::max<std::uint64_t>(1, target / 16);

    struct Point {
        std::size_t threads;
        double seconds;
        double payments_per_sec;
    };
    std::vector<Point> points;
    std::size_t baseline_payments = 0;
    std::int64_t baseline_close = 0;

    for (const std::size_t width : {1u, 2u, 4u, 8u}) {
        exec::ScopedParallelism pool(width);
        const obs::Stopwatch watch;
        const datagen::GeneratedHistory history =
            datagen::generate_history(config);
        const double seconds = watch.elapsed_seconds();
        if (width == 1) {
            baseline_payments = history.payments.size();
            baseline_close = history.last_close.seconds;
        } else if (history.payments.size() != baseline_payments ||
                   history.last_close.seconds != baseline_close) {
            std::cerr << "FATAL: output drifted at width " << width << "\n";
            return 1;
        }
        points.push_back({width, seconds,
                          static_cast<double>(history.payments.size()) /
                              seconds});
    }

    const double base = points.front().payments_per_sec;
    std::cout << "{\n"
              << "  \"bench\": \"ext_datagen_scaling\",\n"
              << "  \"payments\": " << baseline_payments << ",\n"
              << "  \"payments_per_slice\": " << config.payments_per_slice
              << ",\n"
              << "  \"results\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& p = points[i];
        std::cout << "    {\"threads\": " << p.threads << ", \"seconds\": "
                  << p.seconds << ", \"payments_per_sec\": "
                  << static_cast<std::uint64_t>(p.payments_per_sec)
                  << ", \"speedup\": " << p.payments_per_sec / base << "}"
                  << (i + 1 < points.size() ? "," : "") << "\n";
    }
    std::cout << "  ]\n}\n";
    return 0;
}
