// Fig 3 — the de-anonymization study: percentage of payments whose
// fingerprint pins down a unique sender, across the paper's ten
// feature/resolution configurations.
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "core/ig_study.hpp"
#include "util/table.hpp"

XRPL_BENCH("fig3_deanon", "Fig 3",
           "information gain per feature list and resolution") {
    using namespace xrpl;
    // Payments only — served from the XRPL_DATASET_DIR snapshot cache
    // when primed; the study never touches the rest of the history.
    const ledger::PaymentColumns& payments = bench::dataset_payments();

    const auto rows = core::run_ig_study(payments);

    util::TextTable table({"configuration", "measured IG", "paper", "", "bar"});
    table.set_alignment({util::Align::kLeft, util::Align::kRight,
                         util::Align::kRight, util::Align::kLeft,
                         util::Align::kLeft});
    for (const core::IgStudyRow& row : rows) {
        const double ig = row.result.information_gain();
        std::string paper = "-";
        std::string flag;
        if (row.paper_value) {
            paper = util::format_percent(*row.paper_value);
            flag = row.paper_value_exact ? "(quoted)" : "(read off figure)";
        }
        table.add_row({row.config.label(), util::format_percent(ig), paper, flag,
                       std::string(static_cast<std::size_t>(ig * 50.0), '#')});
    }
    table.render(std::cout);

    std::cout << "\npayments analyzed: "
              << util::format_count(rows.front().result.total_payments) << "\n";
    bench::print_paper_note(
        "99.83% at full resolution; currency removal changes nothing; "
        "destination removal -> 93.78%; amount removal -> 89.86%; timestamp "
        "removal -> 48.84% (worse than a coin toss); <Al,Tdy,-,-> -> 1.28%.");
    return 0;
}
