// Fig 7 — the 50 most influential users: (a) how often they appear as
// intermediate hops, (b) their trust received/given, (c) their net
// balance (aggregated in a reference currency, as the paper does in
// EUR; we use USD values).
#include <iostream>

#include "analytics/top_users.hpp"
#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"

XRPL_BENCH("fig7_top_users", "Fig 7",
           "the 50 most frequent intermediate hops") {
    using namespace xrpl;
    const datagen::GeneratedHistory& history = bench::dataset();

    const auto rate = [](ledger::Currency c) { return datagen::usd_value(c); };
    const auto label = [&](const ledger::AccountID& id) {
        return history.population.label_of(id);
    };
    const auto top = analytics::top_intermediaries(
        history.intermediary_counts, history.ledger, 50, rate, label);

    util::TextTable table({"#", "account", "GW", "times hop", "trust recv",
                           "trust given", "balance"});
    std::size_t rank = 1;
    std::size_t gateways = 0;
    for (const analytics::TopUser& user : top) {
        if (user.is_gateway) ++gateways;
        table.add_row({std::to_string(rank++), user.label,
                       user.is_gateway ? "yes" : "-",
                       util::format_count(user.times_intermediate),
                       util::format_double(user.trust_received, 0),
                       util::format_double(user.trust_given, 0),
                       util::format_double(user.balance, 0)});
    }
    table.render(std::cout);

    const double coverage =
        analytics::coverage_of_top(history.intermediary_counts, 50);
    std::cout << "\ntop-50 coverage of all intermediate-hop appearances: "
              << util::format_percent(coverage) << "\n";
    std::cout << "gateways among the top-50: " << gateways << "\n";

    bench::print_paper_note(
        "50 peers contributed to ~86% of all multi-hop transactions; only 20 "
        "of the 50 are publicly announced gateways; the two most active "
        "(rp2PaY..., r42Ccn... — both activated by ~akhavr) are NOT gateways "
        "and appear almost an order of magnitude more often than the rest.");
    bench::print_paper_note(
        "gateways receive the trust and run negative balances (they owe); "
        "common users declare the trust and hold positive balances.");
    return 0;
}
