// Extension — the wallet-rotation defence §V-B discusses, priced and
// broken.
//
// For growing wallet pools: the IG after rotation, the IG after the
// activation-linkage attack (Moreno-Sanchez et al. [10], which the
// paper says "possibly allows the different wallets to be linked back
// together"), and the bootstrap bill in trust lines and XRP reserves.
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "core/mitigation.hpp"
#include "util/table.hpp"

XRPL_BENCH("ext_mitigation", "Extension",
           "wallet rotation: cost and (in)effectiveness") {
    using namespace xrpl;
    const datagen::GeneratedHistory& history = bench::dataset();

    // Each owner's wallets must recreate its trust lines.
    const auto trustlines_of = [&](const ledger::AccountID& owner) {
        return history.ledger.lines_of(owner).size();
    };

    const core::ResolutionConfig resolution = core::full_resolution();

    util::TextTable table({"wallets/sender", "IG rotated", "IG after linkage",
                           "new trust lines", "XRP reserves locked"});
    for (const std::size_t wallets : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8},
                                      std::size_t{16}}) {
        core::WalletRotationConfig config;
        config.wallets_per_sender = wallets;
        const core::MitigationReport report = core::evaluate_wallet_rotation(
            history.payments, resolution, config, trustlines_of);
        table.add_row({std::to_string(wallets),
                       util::format_percent(report.rotated.information_gain()),
                       util::format_percent(report.linked.information_gain()),
                       util::format_count(report.trustlines_created),
                       util::format_double(report.xrp_reserve_cost, 0)});
    }
    table.render(std::cout);

    const core::Deanonymizer baseline(history.payments);
    std::cout << "\nbaseline IG (no rotation): "
              << util::format_percent(
                     baseline.information_gain(resolution).information_gain())
              << "\n\n";
    bench::print_paper_note(
        "\"every new wallet would need to create enough new trustlines ... "
        "bootstrapping very complex and expensive ... possibly allowing the "
        "different wallets to be linked back together\" — the linkage column "
        "returns to baseline no matter how many wallets are bought.");
    return 0;
}
