// Table II — payments submitted and delivered in the absence of
// Market Makers.
//
// Builds the snapshot network, replays a payment stream (68.7%
// cross-currency, the paper's Feb-Aug 2015 mix) against a pristine
// clone, then removes every Market Maker and all exchange offers and
// replays the same stream, "carefully handling the user balances by
// updating them after each successful payment".
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "paths/order_book.hpp"
#include "paths/replay.hpp"
#include "util/table.hpp"

XRPL_BENCH("table2_market_makers", "Table II",
           "payments delivered without Market Makers") {
    using namespace xrpl;
    const datagen::GeneratedHistory& history = bench::dataset();

    const std::uint64_t replay_count = util::options().bench_replay_payments;
    util::Rng rng = util::RngStream(777).derive("replay").rng();
    // As the paper does, replay the payments "submitted after the
    // snapshot and successfully delivered".
    const auto payments = datagen::make_delivered_replay_workload(
        history.population, history.ledger, replay_count, 0.687, rng);
    std::cout << "replaying " << util::format_count(payments.size())
              << " delivered payments (68.7% cross-currency, as in the "
                 "paper's Feb-Aug 2015 slice)\n\n";

    // Offer concentration preamble (the paper's lead-in to Table II).
    const auto makers = paths::maker_concentration(history.ledger);
    std::uint64_t total_offers = history.offers_placed_total;
    auto placements = history.offer_placements;
    std::sort(placements.rbegin(), placements.rend());
    const auto share_of_top = [&](std::size_t k) {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < k && i < placements.size(); ++i) {
            sum += placements[i];
        }
        return total_offers == 0
                   ? 0.0
                   : static_cast<double>(sum) / static_cast<double>(total_offers);
    };
    std::cout << "offers placed: " << util::format_count(total_offers)
              << " by " << makers.size() << " active Market Makers\n"
              << "top-10 makers placed " << util::format_percent(share_of_top(10))
              << ", top-50 " << util::format_percent(share_of_top(50))
              << ", top-100 " << util::format_percent(share_of_top(100)) << "\n";
    bench::print_paper_note("50% of 90M offers from 10 makers, 75% from 50, "
                            "87% from 100.");
    std::cout << "\n";

    // Baseline replay.
    ledger::LedgerState baseline_world = history.ledger.clone();
    paths::PaymentEngine baseline_engine(baseline_world);
    const paths::ReplayStats baseline = paths::replay(baseline_engine, payments);

    // Market-Maker-free replay.
    ledger::LedgerState mmless_world = history.ledger.clone();
    paths::PaymentEngine mmless_engine(mmless_world);
    const paths::ReplayStats without = paths::replay_without(
        mmless_engine, payments, history.population.market_makers, true);

    const auto row = [](const char* name, std::uint64_t submitted,
                        std::uint64_t delivered) {
        const double rate =
            submitted == 0 ? 0.0
                           : static_cast<double>(delivered) /
                                 static_cast<double>(submitted);
        return std::vector<std::string>{name, util::format_count(submitted),
                                        util::format_count(delivered),
                                        util::format_percent(rate)};
    };

    std::cout << "baseline (Market Makers present):\n";
    util::TextTable base_table({"Category", "Submitted", "Delivered", "Rate"});
    base_table.add_row(row("Cross-currency", baseline.cross_submitted,
                           baseline.cross_delivered));
    base_table.add_row(row("Single-currency", baseline.single_submitted,
                           baseline.single_delivered));
    base_table.add_row(row("Total", baseline.submitted(), baseline.delivered()));
    base_table.render(std::cout);

    std::cout << "\nwithout Market Makers (accounts and offers removed):\n";
    util::TextTable mmless_table({"Category", "Submitted", "Delivered", "Rate"});
    mmless_table.add_row(row("Cross-currency", without.cross_submitted,
                             without.cross_delivered));
    mmless_table.add_row(row("Single-currency", without.single_submitted,
                             without.single_delivered));
    mmless_table.add_row(row("Total", without.submitted(), without.delivered()));
    mmless_table.render(std::cout);

    std::cout << "\n";
    bench::print_paper_note(
        "Table II: cross-currency 1,185,521 submitted / 0 delivered (0%); "
        "single-currency 538,169 / 194,300 (36.10%); total 1,723,690 / "
        "194,300 (11.2%).");
    return 0;
}
