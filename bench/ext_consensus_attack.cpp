// Extension — §IV's two discussion points, quantified.
//
// (1) Validator takeover: knock out the k busiest UNL validators of
//     the December 2015 population and measure the system's close
//     rate ("a malicious party hijacking or compromising the majority
//     of these validators could endanger the whole Ripple system").
// (2) The reward system the paper proposes as a fix: validator
//     adoption economics, population growth, and how the grown
//     population shrugs off the same attack.
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "consensus/robustness.hpp"
#include "util/table.hpp"

XRPL_BENCH("ext_consensus_attack", "Extension",
           "validator takeover & the reward remedy") {
    using namespace xrpl;

    std::cout << "(1) takeover sweep, December 2015 population, 5-member "
                 "UNL:\n";
    const util::RngStream root(41);
    consensus::ConsensusConfig config =
        consensus::two_week_config(0.02, root.derive("takeover"));
    const auto sweep =
        consensus::takeover_sweep(consensus::december_2015(), config, 5);
    util::TextTable sweep_table(
        {"UNL validators compromised", "rounds closed", "close rate"});
    for (const consensus::TakeoverResult& point : sweep) {
        sweep_table.add_row({std::to_string(point.compromised),
                             util::format_count(point.pages_closed),
                             util::format_percent(point.close_rate())});
    }
    sweep_table.render(std::cout);
    std::cout << "(compromising 2 of the 5 UNL members is enough to halt the "
                 "whole system)\n\n";

    std::cout << "(2) the proposed per-transaction tax reward, 100 epochs:\n";
    consensus::RewardPolicy policy;
    policy.reward_per_epoch = 6'000.0;
    policy.operating_cost_per_epoch = 400.0;
    policy.initial_validators = 5;
    policy.adoption_rate = 2.0;
    const auto trajectory =
        consensus::simulate_reward_adoption(policy, 100, root.derive("reward"));

    util::TextTable reward_table({"epoch", "validators", "income/validator",
                                  "close rate if 8 busiest knocked out"});
    for (const consensus::RewardEpoch& epoch : trajectory) {
        if (epoch.epoch % 10 != 0 && epoch.epoch != trajectory.size() - 1) {
            continue;
        }
        reward_table.add_row(
            {std::to_string(epoch.epoch), std::to_string(epoch.validators),
             util::format_double(epoch.income_per_validator, 0),
             util::format_percent(epoch.close_rate_under_takeover_of_8)});
    }
    reward_table.render(std::cout);

    std::cout << "\n";
    bench::print_paper_note(
        "\"a carefully crafted reward system would stimulate the entry of "
        "new validation servers ... a larger number of validators would lead "
        "to a better distributed validation process that in turn would "
        "improve the reliability of the entire system.\"");
    return 0;
}
