// Fig 4 — Ripple's most used currencies by payment count (log scale).
#include <iostream>

#include "analytics/currency_stats.hpp"
#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "datagen/spam.hpp"
#include "util/table.hpp"
#include "util/textplot.hpp"

XRPL_BENCH("fig4_currencies", "Fig 4",
           "most used currencies, by payment count") {
    using namespace xrpl;
    // Cacheable payments + cheap population rebuild — no full history.
    const ledger::PaymentColumns& payments = bench::dataset_payments();

    // Chunk-parallel scan of the currency column (identical to the
    // streamed history.currency_counts — pinned by test_determinism).
    const auto ranked = analytics::rank_currencies(payments.view());
    std::vector<util::Bar> bars;
    for (const analytics::CurrencyCount& row : ranked) {
        if (row.payments < 2) continue;  // Fig 4 cuts off around 10^2
        bars.push_back(util::Bar{row.currency.to_string() + "  (" +
                                     util::format_percent(row.share) + ")",
                                 static_cast<double>(row.payments), -1.0});
    }
    util::BarChartOptions options;
    options.log_scale = true;
    options.value_header = "# payments";
    render_bar_chart(std::cout, bars, options);

    const datagen::SpamBreakdown spam = datagen::spam_breakdown(
        payments.view(), bench::dataset_population().population);
    std::cout << "\nspam share of the stream: mtl="
              << util::format_count(spam.mtl)
              << "  cck=" << util::format_count(spam.cck)
              << "  account-zero=" << util::format_count(spam.account_zero)
              << "  ~Ripple Spin=" << util::format_count(spam.gambling) << "\n";

    bench::print_paper_note(
        "XRP first with 49% of payments; CCK and MTL (non-ISO codes, likely "
        "DoS) second and third; BTC 4.7%, USD 3.8%, CNY 3.3%, JPY 2.1%, EUR "
        "only 11th with 0.4%; ~45-currency tail down to ~100 payments.");
    return 0;
}
