// Engineering micro-benchmarks (google-benchmark): throughput of the
// primitives every experiment leans on, plus ablations called out in
// DESIGN.md §6 (decimal IouAmount vs double, indexed vs scanning
// attack, quorum sensitivity).
#include <benchmark/benchmark.h>

#include <vector>

#include "consensus/period_config.hpp"
#include "consensus/rpca.hpp"
#include "core/deanonymizer.hpp"
#include "core/ig_study.hpp"
#include "exec/thread_pool.hpp"
#include "ledger/amount.hpp"
#include "ledger/payment_columns.hpp"
#include "node/node.hpp"
#include "paths/path_finder.hpp"
#include "paths/payment_engine.hpp"
#include "paths/widest_path.hpp"
#include "util/base58.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace {

using namespace xrpl;

void BM_Sha256_1KiB(benchmark::State& state) {
    std::vector<std::uint8_t> data(1024, 0xab);
    for (auto _ : state) {
        benchmark::DoNotOptimize(util::sha256(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Base58CheckEncode(benchmark::State& state) {
    std::vector<std::uint8_t> payload(20, 0x42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            util::base58check_encode(util::kTokenAccountId, payload));
    }
}
BENCHMARK(BM_Base58CheckEncode);

void BM_IouAmountAdd(benchmark::State& state) {
    const ledger::IouAmount a = ledger::IouAmount::from_double(123.456);
    const ledger::IouAmount b = ledger::IouAmount::from_double(0.000789);
    for (auto _ : state) {
        benchmark::DoNotOptimize(a + b);
    }
}
BENCHMARK(BM_IouAmountAdd);

void BM_IouAmountRound(benchmark::State& state) {
    const ledger::IouAmount v = ledger::IouAmount::from_double(123456.789);
    for (auto _ : state) {
        benchmark::DoNotOptimize(v.round_to_power_of_ten(2));
    }
}
BENCHMARK(BM_IouAmountRound);

// Ablation: exact decimal arithmetic vs naive double (what precision
// costs in speed).
void BM_Ablation_DoubleAdd(benchmark::State& state) {
    double a = 123.456;
    const double b = 0.000789;
    for (auto _ : state) {
        benchmark::DoNotOptimize(a += b);
    }
}
BENCHMARK(BM_Ablation_DoubleAdd);

std::vector<ledger::TxRecord> make_records(std::size_t n) {
    util::Rng rng = util::RngStream(7).derive("records").rng();
    std::vector<ledger::TxRecord> records;
    records.reserve(n);
    std::int64_t now = 0;
    for (std::size_t i = 0; i < n; ++i) {
        now += static_cast<std::int64_t>(rng.uniform_u64(0, 9));
        ledger::TxRecord r;
        r.sender = ledger::AccountID::from_seed(
            "u" + std::to_string(rng.uniform_u64(0, 999)));
        r.destination = ledger::AccountID::from_seed(
            "m" + std::to_string(rng.uniform_u64(0, 99)));
        r.currency = ledger::Currency::from_code(rng.bernoulli(0.5) ? "USD" : "BTC");
        r.amount = ledger::IouAmount::from_double(rng.lognormal(3.0, 2.0));
        r.time = util::RippleTime{now};
        records.push_back(r);
    }
    return records;
}

void BM_Fingerprint(benchmark::State& state) {
    const auto records = make_records(1);
    const core::ResolutionConfig config = core::full_resolution();
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::fingerprint(records[0], config));
    }
}
BENCHMARK(BM_Fingerprint);

void BM_InformationGain(benchmark::State& state) {
    const auto records = make_records(static_cast<std::size_t>(state.range(0)));
    const core::Deanonymizer deanonymizer(records);
    const core::ResolutionConfig config = core::full_resolution();
    for (auto _ : state) {
        benchmark::DoNotOptimize(deanonymizer.information_gain(config));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_InformationGain)->Arg(10'000)->Arg(100'000)->Arg(250'000);

// Row vs columnar IG over the same payments (the speedup the SoA
// layout buys: one batched fingerprint pass with per-account and
// per-currency precomputation instead of two row scans).
void BM_InformationGainColumnar(benchmark::State& state) {
    const auto records = make_records(static_cast<std::size_t>(state.range(0)));
    const ledger::PaymentColumns columns =
        ledger::PaymentColumns::from_records(records);
    const core::Deanonymizer deanonymizer(columns);
    const core::ResolutionConfig config = core::full_resolution();
    for (auto _ : state) {
        benchmark::DoNotOptimize(deanonymizer.information_gain(config));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_InformationGainColumnar)->Arg(10'000)->Arg(100'000)->Arg(250'000);

// Thread-count sweep for the chunked scans: 1 / 2 / 4 / all hardware
// threads (skipped when hardware has 4 or fewer). The Arg is the pool
// width; results must be identical across the sweep — only the time
// may move.
void ThreadSweepArgs(benchmark::internal::Benchmark* b) {
    b->Arg(1)->Arg(2)->Arg(4);
    const auto hardware =
        static_cast<std::int64_t>(exec::ThreadPool::configured_parallelism());
    if (hardware > 4) b->Arg(hardware);
}

void BM_InformationGainColumnarThreads(benchmark::State& state) {
    const auto records = make_records(250'000);
    const ledger::PaymentColumns columns =
        ledger::PaymentColumns::from_records(records);
    const core::Deanonymizer deanonymizer(columns);
    const core::ResolutionConfig config = core::full_resolution();
    exec::ScopedParallelism pool(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(deanonymizer.information_gain(config));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            250'000);
}
BENCHMARK(BM_InformationGainColumnarThreads)->Apply(ThreadSweepArgs);

// The full ten-configuration Fig 3 grid — the acceptance target for
// the chunked runtime (configs x chunks on one flat task grid).
void BM_IgStudyThreads(benchmark::State& state) {
    const auto records = make_records(250'000);
    const ledger::PaymentColumns columns =
        ledger::PaymentColumns::from_records(records);
    exec::ScopedParallelism pool(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::run_ig_study(columns.view()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            250'000 * 10);
}
BENCHMARK(BM_IgStudyThreads)->Apply(ThreadSweepArgs);

// Ablation: one indexed attack vs scanning the whole history.
void BM_AttackIndexed(benchmark::State& state) {
    const auto records = make_records(100'000);
    const core::AttackIndex index(records, core::full_resolution());
    for (auto _ : state) {
        benchmark::DoNotOptimize(index.candidate_senders(records[12'345]));
    }
}
BENCHMARK(BM_AttackIndexed);

void BM_AttackScan(benchmark::State& state) {
    const auto records = make_records(100'000);
    const core::Deanonymizer deanonymizer(records);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            deanonymizer.attack(records[12'345], core::full_resolution()));
    }
}
BENCHMARK(BM_AttackScan);

struct PathWorld {
    ledger::LedgerState state;
    ledger::AccountID user, merchant;

    PathWorld() {
        util::Rng rng = util::RngStream(11).derive("path-world").rng();
        std::vector<ledger::AccountID> gateways;
        for (int g = 0; g < 20; ++g) {
            const auto id = ledger::AccountID::from_seed("g" + std::to_string(g));
            state.create_account(id, ledger::XrpAmount::from_xrp(1e6), true);
            gateways.push_back(id);
        }
        const ledger::Currency usd = ledger::Currency::from_code("USD");
        for (int u = 0; u < 2'000; ++u) {
            const auto id = ledger::AccountID::from_seed("u" + std::to_string(u));
            state.create_account(id, ledger::XrpAmount::from_xrp(100.0));
            for (int k = 0; k < 3; ++k) {
                const auto& gw = gateways[rng.uniform_u64(0, gateways.size() - 1)];
                ledger::TrustLine& line = state.set_trust(
                    id, gw, usd, ledger::IouAmount::from_double(1e6));
                (void)line.transfer_from(gw,
                                         ledger::IouAmount::from_double(1'000.0));
            }
        }
        user = ledger::AccountID::from_seed("u0");
        merchant = ledger::AccountID::from_seed("u1999");
    }
};

void BM_PathFinder(benchmark::State& state) {
    static PathWorld world;
    paths::TrustGraph graph(world.state);
    paths::PathFinder finder;
    const ledger::Currency usd = ledger::Currency::from_code("USD");
    for (auto _ : state) {
        benchmark::DoNotOptimize(finder.find(graph, world.user, world.merchant, usd));
    }
}
BENCHMARK(BM_PathFinder);

// Ablation: widest-path Dijkstra vs BFS on the same dense topology.
void BM_PathFinder_Widest(benchmark::State& state) {
    static PathWorld world;
    paths::TrustGraph graph(world.state);
    paths::WidestPathFinder finder;
    const ledger::Currency usd = ledger::Currency::from_code("USD");
    for (auto _ : state) {
        benchmark::DoNotOptimize(finder.find(graph, world.user, world.merchant, usd));
    }
}
BENCHMARK(BM_PathFinder_Widest);

// End-to-end node throughput: submit -> consensus -> sealed -> applied.
void BM_NodeRound(benchmark::State& state) {
    ledger::LedgerState world;
    const auto alice = ledger::AccountID::from_seed("bm:alice");
    const auto bob = ledger::AccountID::from_seed("bm:bob");
    world.create_account(alice, ledger::XrpAmount::from_xrp(1e9));
    world.create_account(bob, ledger::XrpAmount::from_xrp(1e9));
    std::vector<consensus::ValidatorSpec> validators;
    for (int i = 0; i < 5; ++i) {
        consensus::ValidatorSpec v;
        v.label = "v" + std::to_string(i);
        v.behavior = consensus::ValidatorBehavior::kCore;
        v.availability = 1.0;
        v.on_unl = true;
        validators.push_back(v);
    }
    node::NodeConfig config;
    config.consensus.seed = 1;
    config.max_txs_per_page = 20;
    node::Node node(world, validators, config);

    std::uint32_t sequence = 1;
    std::int64_t txs = 0;
    for (auto _ : state) {
        state.PauseTiming();
        for (int i = 0; i < 20; ++i) {
            ledger::Transaction tx;
            tx.type = ledger::TxType::kPayment;
            tx.sender = alice;
            tx.sequence = sequence++;
            tx.destination = bob;
            tx.amount = ledger::Amount::xrp(1.0);
            tx.source_currency = ledger::Currency::xrp();
            node.submit(tx);
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(node.run_round());
        txs += 20;
    }
    state.SetItemsProcessed(txs);
}
BENCHMARK(BM_NodeRound);

void BM_ConsensusRound(benchmark::State& state) {
    const consensus::PeriodSpec period = consensus::december_2015();
    for (auto _ : state) {
        state.PauseTiming();
        consensus::ConsensusConfig config;
        config.rounds = 1'000;
        config.seed = 3;
        consensus::ConsensusSimulation sim(period.validators, config);
        consensus::ValidationStream stream;
        state.ResumeTiming();
        benchmark::DoNotOptimize(sim.run(stream));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1'000);
}
BENCHMARK(BM_ConsensusRound)->Unit(benchmark::kMillisecond);

// Ablation: the pre-2015 50% quorum closes rounds a weakened UNL
// cannot close at 80% (robustness/fork-risk trade-off the paper's
// references [7,8] drove).
void BM_Ablation_Quorum(benchmark::State& state) {
    const double quorum = static_cast<double>(state.range(0)) / 100.0;
    std::uint64_t closed = 0;
    std::uint64_t rounds = 0;
    for (auto _ : state) {
        consensus::ConsensusConfig config;
        config.rounds = 2'000;
        config.seed = 5;
        config.quorum = quorum;
        std::vector<consensus::ValidatorSpec> validators;
        for (int i = 0; i < 5; ++i) {
            consensus::ValidatorSpec v;
            v.label = "v" + std::to_string(i);
            v.behavior = consensus::ValidatorBehavior::kCore;
            v.availability = 0.7;  // a struggling UNL
            v.on_unl = true;
            validators.push_back(v);
        }
        consensus::ConsensusSimulation sim(validators, config);
        consensus::ValidationStream stream;
        const consensus::ConsensusStats stats = sim.run(stream);
        closed += stats.main_pages_closed;
        rounds += stats.rounds;
    }
    state.counters["close_rate"] =
        rounds == 0 ? 0.0 : static_cast<double>(closed) / static_cast<double>(rounds);
}
BENCHMARK(BM_Ablation_Quorum)->Arg(50)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
