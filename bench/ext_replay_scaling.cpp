// Extension — replay throughput: CSR GraphIndex vs legacy scan.
//
// Builds a population snapshot sized by XRPL_BENCH_REPLAY_ACCOUNTS
// (users; default 20,000 — the acceptance run uses 100,000), seeds
// every Market Maker's order book, generates a delivered Table II
// replay stream, then replays it twice: once through the legacy
// lines_of() scan engine and once through the indexed engine. The two
// replays must produce IDENTICAL ReplayStats and identical
// paths.nodes_expanded totals — any divergence is a FATAL engine bug,
// not a perf result. Reports payments/second for both engines and the
// speedup as JSON (stdout); the same numbers land in
// BENCH_ext_replay_scaling.json via bench gauges, next to the
// paths.nodes_expanded and paths.index.* counters.
//
// Knobs: XRPL_BENCH_REPLAY_ACCOUNTS (population), and
// XRPL_BENCH_REPLAY_PAYMENTS (stream length, default 40,000).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "paths/replay.hpp"
#include "util/rng.hpp"

namespace {

/// Population snapshots carry no offers (books are built by the
/// workload stage this bench skips), so seed each maker's book here:
/// two XRP-bridge quotes per currency the maker holds, fair-rate
/// sized, deterministic in the derived rng. Enough for the engine's
/// auto-bridge to serve the stream's cross-currency payments.
void seed_offer_books(xrpl::ledger::LedgerState& state,
                      const xrpl::datagen::Population& population,
                      xrpl::util::Rng& rng) {
    using xrpl::ledger::Amount;
    using xrpl::ledger::Currency;
    for (const xrpl::ledger::AccountID& maker : population.market_makers) {
        std::vector<Currency> currencies;
        for (const xrpl::ledger::TrustLine* line : state.lines_of(maker)) {
            const Currency c = line->key().currency;
            if (std::find(currencies.begin(), currencies.end(), c) ==
                currencies.end()) {
                currencies.push_back(c);
            }
        }
        for (const Currency c : currencies) {
            const double value = xrpl::datagen::usd_value(c);
            const double depth = (5e5 / value) * rng.lognormal(0.0, 0.4);
            const double xrp_per_unit =
                value / xrpl::datagen::usd_value(Currency::xrp());
            // Maker sells c for XRP and XRP for c, with a small spread.
            state.place_offer(maker, Amount::iou(c, depth),
                              Amount::iou(Currency::xrp(),
                                          depth * xrp_per_unit *
                                              rng.uniform(1.002, 1.02)));
            state.place_offer(
                maker, Amount::iou(Currency::xrp(), depth * xrp_per_unit),
                Amount::iou(c, depth / rng.uniform(1.002, 1.02)));
        }
    }
}

}  // namespace

XRPL_BENCH("ext_replay_scaling", "Extension",
           "replay throughput: CSR graph index vs legacy scan") {
    using namespace xrpl;

    datagen::GeneratorConfig config;
    config.seed = 20150815;
    config.num_users = util::options().bench_replay_accounts;
    config.num_gateways = 40;
    config.num_market_makers =
        std::clamp<std::size_t>(config.num_users / 100, 40, 400);
    config.num_merchants =
        std::clamp<std::size_t>(config.num_users / 16, 100, 8'000);
    config.num_hubs = 20;

    std::cout << "[population: " << config.num_users << " users ...]\n";
    datagen::PopulationSnapshot snapshot =
        datagen::generate_population_only(config);
    util::Rng offer_rng = util::RngStream(config.seed).derive("offers").rng();
    seed_offer_books(snapshot.ledger, snapshot.population, offer_rng);

    const std::uint64_t stream = util::options().bench_replay_payments;
    util::Rng rng = util::RngStream(config.seed).derive("replay").rng();
    const auto payments = datagen::make_delivered_replay_workload(
        snapshot.population, snapshot.ledger, stream, 0.687, rng);
    std::cout << "[accounts: " << snapshot.ledger.account_count()
              << ", offers: " << snapshot.ledger.offer_count()
              << ", replay stream: " << payments.size() << " payments]\n\n";

    struct Run {
        const char* name = "";
        bool use_index = false;
        double seconds = 0.0;
        double payments_per_sec = 0.0;
        std::uint64_t nodes_expanded = 0;
        paths::ReplayStats stats;
    };
    Run runs[2];
    runs[0].name = "scan";
    runs[0].use_index = false;
    runs[1].name = "indexed";
    runs[1].use_index = true;

    obs::Counter& expanded = obs::counter("paths.nodes_expanded");
    for (Run& run : runs) {
        ledger::LedgerState world = snapshot.ledger.clone();
        paths::EngineConfig engine_config;
        engine_config.use_path_index = run.use_index;
        paths::PaymentEngine engine(world, engine_config);
        const std::uint64_t before = expanded.value();
        const obs::Stopwatch watch;
        run.stats = paths::replay(engine, payments);
        run.seconds = watch.elapsed_seconds();
        run.nodes_expanded = expanded.value() - before;
        run.payments_per_sec =
            static_cast<double>(payments.size()) / run.seconds;
    }

    const Run& scan = runs[0];
    const Run& indexed = runs[1];
    if (scan.stats.cross_delivered != indexed.stats.cross_delivered ||
        scan.stats.single_delivered != indexed.stats.single_delivered ||
        scan.stats.cross_submitted != indexed.stats.cross_submitted ||
        scan.stats.single_submitted != indexed.stats.single_submitted) {
        std::cerr << "FATAL: ReplayStats diverged between engines (scan "
                  << scan.stats.delivered() << "/" << scan.stats.submitted()
                  << ", indexed " << indexed.stats.delivered() << "/"
                  << indexed.stats.submitted() << ")\n";
        return 1;
    }
    if (scan.nodes_expanded != indexed.nodes_expanded) {
        std::cerr << "FATAL: nodes_expanded diverged (scan "
                  << scan.nodes_expanded << ", indexed "
                  << indexed.nodes_expanded << ")\n";
        return 1;
    }

    const double speedup = indexed.payments_per_sec / scan.payments_per_sec;
    // Mirror the headline numbers into the BENCH json's obs section.
    obs::gauge("bench.replay.scan_pps")
        .set(static_cast<std::int64_t>(scan.payments_per_sec));
    obs::gauge("bench.replay.indexed_pps")
        .set(static_cast<std::int64_t>(indexed.payments_per_sec));
    obs::gauge("bench.replay.speedup_pct")
        .set(static_cast<std::int64_t>(speedup * 100.0));
    obs::gauge("bench.replay.accounts")
        .set(static_cast<std::int64_t>(snapshot.ledger.account_count()));

    std::cout << "{\n"
              << "  \"bench\": \"ext_replay_scaling\",\n"
              << "  \"accounts\": " << snapshot.ledger.account_count() << ",\n"
              << "  \"payments\": " << payments.size() << ",\n"
              << "  \"delivered\": " << indexed.stats.delivered() << ",\n"
              << "  \"nodes_expanded\": " << indexed.nodes_expanded << ",\n"
              << "  \"results\": [\n";
    for (std::size_t i = 0; i < 2; ++i) {
        const Run& run = runs[i];
        std::cout << "    {\"engine\": \"" << run.name << "\", \"seconds\": "
                  << run.seconds << ", \"payments_per_sec\": "
                  << static_cast<std::uint64_t>(run.payments_per_sec) << "}"
                  << (i == 0 ? "," : "") << "\n";
    }
    std::cout << "  ],\n"
              << "  \"speedup\": " << speedup << "\n"
              << "}\n";
    return 0;
}
