// Extension — snapshot cache: cold generate+store vs warm load.
//
// Measures what the XCOL dataset cache (src/snap/) buys: one
// cache-miss pass (generate the history, encode, publish) against one
// cache-hit pass (read + decode + verify the same artifact), as JSON
// (one object, stdout). The hit must be markedly faster — loading a
// columnar snapshot is a streaming varint decode, generating it is
// the whole payment-engine pipeline — and byte-identical: both passes
// fingerprint their store and the bench fails on any drift.
//
// The cache roots at XRPL_DATASET_DIR when set; otherwise a
// throwaway directory under XRPL_BENCH_JSON_DIR, evicted afterwards
// so a default run leaves nothing behind. snap.cache.* counters and
// timing histograms land in BENCH_ext_snapshot_cache.json.
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "datagen/dataset.hpp"
#include "ledger/payment_columns.hpp"
#include "obs/stopwatch.hpp"
#include "snap/dataset_cache.hpp"
#include "util/file_io.hpp"
#include "util/options.hpp"

XRPL_BENCH("ext_snapshot_cache", "Extension",
           "dataset cache: cold generate+store vs warm snapshot load") {
    using namespace xrpl;

    datagen::GeneratorConfig config = bench::default_history_config();
    const std::string key = datagen::dataset_key(config);

    const std::string configured = util::options().dataset_dir;
    const bool throwaway = configured.empty();
    const std::string root =
        throwaway ? util::options().bench_json_dir + "/xcol_cache_bench"
                  : configured;
    const snap::DatasetCache cache(root);

    // Cold pass: force a miss (evict any primed entry first) so the
    // measured path is generate + encode + publish.
    util::remove_file(cache.path_for(key));
    const obs::Stopwatch cold_watch;
    const ledger::PaymentColumns generated = cache.load_or_generate(
        key, [&config] { return datagen::generate_history(config).payments; });
    const double cold_seconds = cold_watch.elapsed_seconds();

    // Warm pass: the artifact exists, so this is read + CRC/seal
    // verify + parallel decode.
    const obs::Stopwatch warm_watch;
    const ledger::PaymentColumns loaded = cache.load_or_generate(
        key, [&config] { return datagen::generate_history(config).payments; });
    const double warm_seconds = warm_watch.elapsed_seconds();

    const std::string cold_print = ledger::columns_fingerprint(generated);
    const std::string warm_print = ledger::columns_fingerprint(loaded);
    if (cold_print != warm_print) {
        std::cerr << "FATAL: loaded snapshot drifted from generated store\n"
                  << "  generated " << cold_print << "\n  loaded    "
                  << warm_print << "\n";
        return 1;
    }

    const auto artifact_bytes = util::file_size(cache.path_for(key));
    if (throwaway) {
        util::remove_file(cache.path_for(key));
    }

    std::cout << "{\n"
              << "  \"bench\": \"ext_snapshot_cache\",\n"
              << "  \"payments\": " << loaded.size() << ",\n"
              << "  \"fingerprint\": \"" << warm_print << "\",\n"
              << "  \"artifact_bytes\": " << artifact_bytes.value_or(0) << ",\n"
              << "  \"cold_generate_seconds\": " << cold_seconds << ",\n"
              << "  \"warm_load_seconds\": " << warm_seconds << ",\n"
              << "  \"speedup\": " << cold_seconds / warm_seconds << "\n"
              << "}\n";

    if (warm_seconds >= cold_seconds) {
        std::cerr << "FATAL: warm load was not faster than regeneration\n";
        return 1;
    }
    return 0;
}
