// Extension — how the IG depends on history size.
//
// The paper measures one fixed 23M-payment history. Re-running the
// IG over growing prefixes of the synthetic history shows WHY some
// Fig 3 rows are scale-sensitive: at full resolution the timestamp
// keeps fingerprints unique no matter how much history accumulates,
// while the coarse configurations collide more and more as the
// candidate space fills up (the de Montjoye unicity effect in
// reverse).
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "core/ig_study.hpp"
#include "util/table.hpp"

XRPL_BENCH("ext_ig_scaling", "Extension",
           "information gain vs history size") {
    using namespace xrpl;
    // Payments only — cache-served when XRPL_DATASET_DIR is primed.
    const ledger::PaymentColumns& payments = bench::dataset_payments();

    const core::ResolutionConfig configs[] = {
        core::fig3_configurations()[0],  // <Am; Tsc; C; D>
        core::fig3_configurations()[6],  // <Al; Tdy; C; D>
        core::fig3_configurations()[7],  // <Am; -;   C; D>
        core::fig3_configurations()[9],  // <Al; Tdy; -; ->
    };

    std::vector<std::string> header = {"history prefix", "payments"};
    for (const auto& config : configs) header.push_back(config.label());
    util::TextTable table(header);

    for (const double fraction : {0.05, 0.10, 0.25, 0.50, 1.00}) {
        const auto count = static_cast<std::size_t>(
            fraction * static_cast<double>(payments.size()));
        const core::Deanonymizer deanonymizer(payments.view().prefix(count));
        std::vector<std::string> row = {
            util::format_percent(fraction), util::format_count(count)};
        for (const auto& config : configs) {
            row.push_back(util::format_percent(
                deanonymizer.information_gain(config).information_gain()));
        }
        table.add_row(std::move(row));
    }
    table.render(std::cout);

    std::cout << "\n";
    bench::print_paper_note(
        "full-resolution IG is scale-stable (the ledger close time keeps "
        "separating payments), while the timestamp-free configuration "
        "collides ever harder as the candidate space fills up. The "
        "single-sender spam campaigns pull the weakest configuration the "
        "other way — at the paper's 23M-payment scale, cross-sender "
        "coverage of the big-amount buckets wins and that row collapses "
        "to 1.28%.");
    return 0;
}
