// Table I — the rounding process for the currency strength groups.
//
// Prints the group/resolution matrix exactly as the paper tabulates
// it, then demonstrates the rounding on concrete amounts (including
// the 4.5 USD latte).
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "core/resolution.hpp"
#include "util/table.hpp"

namespace {

using namespace xrpl;
using core::AmountResolution;

std::string unit_string(ledger::Currency currency, AmountResolution res) {
    const core::RoundingUnit unit = core::rounding_unit(currency, res);
    std::string out = unit.digit == 1 ? "10^" : "5*10^";
    out += std::to_string(unit.power);
    return out;
}

}  // namespace

XRPL_BENCH("table1_rounding", "Table I",
           "rounding per currency strength group") {

    util::TextTable table({"Strength", "Currencies", "Max (m)", "High (h)",
                           "Average (a)", "Low (l)"});
    table.add_row({"Powerful", "BTC, XAG, XAU, XPT",
                   unit_string(datagen::cur("BTC"), AmountResolution::kMax),
                   unit_string(datagen::cur("BTC"), AmountResolution::kHigh),
                   unit_string(datagen::cur("BTC"), AmountResolution::kAverage),
                   unit_string(datagen::cur("BTC"), AmountResolution::kLow)});
    table.add_row({"Medium", "CNY, EUR, USD, AUD, GBP, JPY",
                   unit_string(datagen::cur("USD"), AmountResolution::kMax),
                   unit_string(datagen::cur("USD"), AmountResolution::kHigh),
                   unit_string(datagen::cur("USD"), AmountResolution::kAverage),
                   unit_string(datagen::cur("USD"), AmountResolution::kLow)});
    table.add_row({"Weak", "XRP, CCK, STR, KRW, MTL",
                   unit_string(datagen::cur("XRP"), AmountResolution::kMax),
                   unit_string(datagen::cur("XRP"), AmountResolution::kHigh),
                   unit_string(datagen::cur("XRP"), AmountResolution::kAverage),
                   unit_string(datagen::cur("XRP"), AmountResolution::kLow)});
    table.render(std::cout);

    std::cout << "\nExamples:\n";
    util::TextTable examples({"amount", "currency", "m", "h", "a", "l"});
    const struct {
        double amount;
        const char* code;
    } samples[] = {
        {4.5, "USD"},      {47.0, "USD"},    {151.0, "USD"},
        {1234.5, "EUR"},   {0.0334, "BTC"},  {0.71, "BTC"},
        {523'000.0, "XRP"}, {1.23e9, "MTL"},
    };
    for (const auto& sample : samples) {
        const ledger::Currency currency = datagen::cur(sample.code);
        const ledger::IouAmount value =
            ledger::IouAmount::from_double(sample.amount);
        examples.add_row(
            {value.to_string(), sample.code,
             core::round_amount(value, currency, AmountResolution::kMax).to_string(),
             core::round_amount(value, currency, AmountResolution::kHigh).to_string(),
             core::round_amount(value, currency, AmountResolution::kAverage)
                 .to_string(),
             core::round_amount(value, currency, AmountResolution::kLow)
                 .to_string()});
    }
    examples.render(std::cout);

    bench::print_paper_note(
        "a given resolution level rounds the original value to the closest "
        "10^x value; the paper tabulates m/a/l, Fig 3 additionally uses the "
        "interpolated A_h level.");
    return 0;
}
