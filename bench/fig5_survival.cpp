// Fig 5 — survival function of exchanged amounts, globally and for
// the paper's featured currencies (BTC, CCK, CNY, EUR, MTL, USD, XRP).
#include <cmath>
#include <iostream>
#include <vector>

#include "analytics/survival.hpp"
#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"

XRPL_BENCH("fig5_survival", "Fig 5",
           "survival function of payment amounts") {
    using namespace xrpl;
    // Chunk-parallel scans of the amount column (identical to the
    // streamed per-currency samples — pinned by test_determinism).
    // Payments only, so the snapshot cache can serve the whole bench.
    const ledger::PaymentView view = bench::dataset_payments().view();

    const char* codes[] = {"BTC", "CCK", "CNY", "EUR", "MTL", "USD", "XRP"};
    std::vector<std::pair<std::string, analytics::SurvivalFunction>> curves;
    curves.emplace_back("Global",
                        analytics::SurvivalFunction(analytics::amount_samples(view)));
    for (const char* code : codes) {
        analytics::SurvivalFunction curve =
            analytics::survival_of(view, datagen::cur(code));
        if (curve.sample_count() == 0) continue;
        curves.emplace_back(code, std::move(curve));
    }

    // Rows: survival at each decade of the paper's 1e-4..1e12 x-axis.
    std::vector<std::string> header = {"amount >"};
    for (const auto& [name, curve] : curves) header.push_back(name);
    util::TextTable table(header);
    for (int exponent = -4; exponent <= 12; exponent += 2) {
        std::vector<std::string> row = {"1e" + std::to_string(exponent)};
        const double threshold = std::pow(10.0, exponent);
        for (const auto& [name, curve] : curves) {
            row.push_back(util::format_double(curve.survival(threshold), 3));
        }
        table.add_row(std::move(row));
    }
    table.render(std::cout);

    std::cout << "\nmedians: ";
    for (const auto& [name, curve] : curves) {
        std::cout << name << "=" << util::format_double(curve.median(), 4) << "  ";
    }
    std::cout << "\n";

    bench::print_paper_note(
        "MTL payments all deliver ~1e9 (crafted spam; the attacker piled up "
        "~1e22 MTL debt); BTC is strong so its payments are micro-amounts; "
        "CCK mirrors BTC ('a large number of micro-transactions'); EUR and "
        "USD have remarkably similar curves.");
    return 0;
}
