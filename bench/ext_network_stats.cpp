// Extension — the appendix's ecosystem counts and concentration.
//
// "As of August 2015, Ripple counted more than 165K users, +55K of
// which were actively participating"; "a handful of 50 peers
// contributed in about 86% of all the 10M multi-hop transactions".
// This bench reports the same counts for the synthetic history (at
// ~1/90 scale) plus the degree distribution and a Gini coefficient of
// intermediary concentration.
#include <iostream>

#include "analytics/network_stats.hpp"
#include "analytics/top_users.hpp"
#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"
#include "util/textplot.hpp"

XRPL_BENCH("ext_network_stats", "Extension",
           "ecosystem counts & trust-network shape") {
    using namespace xrpl;
    const datagen::GeneratedHistory& history = bench::dataset();

    const analytics::NetworkStats stats =
        analytics::compute_network_stats(history.ledger, history.payments.view());

    util::TextTable table({"metric", "value"});
    table.add_row({"accounts", util::format_count(stats.accounts)});
    table.add_row({"active senders", util::format_count(stats.active_senders)});
    table.add_row(
        {"active participants", util::format_count(stats.active_participants)});
    table.add_row({"trust lines", util::format_count(stats.trust_lines)});
    table.add_row({"live offers", util::format_count(stats.live_offers)});
    table.add_row({"mean trust degree",
                   util::format_double(stats.mean_degree, 2)});
    table.add_row({"max trust degree", util::format_count(stats.max_degree)});
    table.render(std::cout);

    std::cout << "\ntrust-line degree distribution (log bars):\n";
    std::vector<util::Bar> bars;
    // Bucket by powers of two to keep the plot compact.
    std::map<std::uint32_t, std::uint64_t> buckets;
    for (const auto& [degree, count] : stats.degree_histogram) {
        std::uint32_t bucket = 1;
        while (bucket * 2 <= degree + 1) bucket *= 2;
        buckets[bucket] += count;
    }
    for (const auto& [bucket, count] : buckets) {
        bars.push_back(util::Bar{"deg<" + std::to_string(bucket * 2),
                                 static_cast<double>(count), -1.0});
    }
    util::BarChartOptions options;
    options.log_scale = true;
    options.value_header = "# accounts";
    render_bar_chart(std::cout, bars, options);

    // Concentration of intermediary traffic.
    std::vector<double> weights;
    for (const auto& [account, count] : history.intermediary_counts) {
        weights.push_back(static_cast<double>(count));
    }
    const double concentration = analytics::gini(std::move(weights));
    const double top50 = analytics::coverage_of_top(history.intermediary_counts, 50);
    std::cout << "\nintermediary concentration: top-50 cover "
              << util::format_percent(top50) << ", Gini "
              << util::format_double(concentration, 3) << "\n\n";

    bench::print_paper_note(
        "165K users, 55K active (Aug 2015); 50 peers in ~86% of the 10M "
        "multi-hop transactions — counts here are at the configured history "
        "scale, shares are comparable directly.");
    return 0;
}
