// Extension — anonymity-set sizes behind Fig 3's single percentage.
//
// For each of the paper's ten configurations: the IG (= payments with
// anonymity set 1), the share identifiable within small sets, and the
// mean set size. Shows that even "protected" payments typically hide
// among only a handful of candidate senders.
#include <iostream>

#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "core/anonymity.hpp"
#include "core/ig_study.hpp"
#include "util/table.hpp"

XRPL_BENCH("ext_anonymity_sets", "Extension",
           "anonymity-set size distribution") {
    using namespace xrpl;
    // Payments only — cache-served when XRPL_DATASET_DIR is primed.
    const ledger::PaymentColumns& payments = bench::dataset_payments();

    util::TextTable table({"configuration", "set=1 (IG)", "set<=3", "set<=10",
                           "mean set", "90% within"});
    for (const core::ResolutionConfig& config : core::fig3_configurations()) {
        const core::AnonymityProfile profile =
            core::analyze_anonymity(payments.view(), config);
        table.add_row({config.label(),
                       util::format_percent(profile.identifiable_within(1)),
                       util::format_percent(profile.identifiable_within(3)),
                       util::format_percent(profile.identifiable_within(10)),
                       util::format_double(profile.mean_set_size(), 1),
                       std::to_string(profile.set_size_quantile(0.9))});
    }
    table.render(std::cout);

    std::cout << "\n";
    bench::print_paper_note(
        "extension of Fig 3 following de Montjoye et al. [11]: the paper "
        "reports only the set=1 column; the others show how little anonymity "
        "the non-unique payments retain.");
    return 0;
}
