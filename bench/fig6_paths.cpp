// Fig 6 — structure of payment paths: (a) payments per intermediate
// hop count, (b) payments per parallel-path count. Both y-axes are
// logarithmic in the paper; the bars here use a log scale too.
#include <iostream>

#include "analytics/path_stats.hpp"
#include "bench/common.hpp"
#include "bench/harness.hpp"
#include "util/table.hpp"
#include "util/textplot.hpp"

XRPL_BENCH("fig6_paths", "Fig 6", "intermediate hops and parallel paths") {
    using namespace xrpl;
    const datagen::GeneratedHistory& history = bench::dataset();

    const analytics::PathStats stats = analytics::make_path_stats(
        history.hop_histogram, history.parallel_histogram);

    std::cout << "multi-hop payments analyzed: "
              << util::format_count(stats.multi_hop_total()) << " (of "
              << util::format_count(history.payments.size())
              << " total; direct transfers excluded, as in the paper)\n\n";

    std::cout << "(a) number of payment paths per intermediate hop count:\n";
    std::vector<util::Bar> hop_bars;
    for (const auto& [hops, count] : stats.hops.items()) {
        hop_bars.push_back(
            util::Bar{std::to_string(hops), static_cast<double>(count), -1.0});
    }
    util::BarChartOptions options;
    options.log_scale = true;
    options.value_header = "# paths";
    render_bar_chart(std::cout, hop_bars, options);
    const std::uint32_t anomaly = stats.hop_anomaly();
    if (anomaly != 0) {
        std::cout << "anomalous spike at " << anomaly
                  << " intermediate hops (MTL ledger-spam campaign: "
                     "payments intentionally forced through exactly 8 "
                     "intermediaries)\n";
    }

    std::cout << "\n(b) number of payments per parallel-path count:\n";
    std::vector<util::Bar> parallel_bars;
    for (const auto& [paths, count] : stats.parallel.items()) {
        parallel_bars.push_back(
            util::Bar{std::to_string(paths), static_cast<double>(count), -1.0});
    }
    options.value_header = "# payments";
    render_bar_chart(std::cout, parallel_bars, options);

    std::cout << "\nshares: ";
    for (std::uint32_t k = 1; k <= 6; ++k) {
        std::cout << k << "-path "
                  << util::format_percent(stats.parallel.share(k)) << "  ";
    }
    std::cout << "\n";

    bench::print_paper_note(
        "(a) majority delivered through <5 intermediate hops, decreasing — "
        "except 3.3M MTL spam payments pinned at exactly 8 (one outlier at "
        "44). (b) 16.3% unsplit, 10.4%/9.3%/28.9% in 2/3/4 parallel paths, "
        "34.8% (the MTL spam) forced into exactly 6.");
    return 0;
}
