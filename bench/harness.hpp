// The shared bench harness: every figure/table/extension bench is a
// registered body, not a hand-rolled main().
//
//   XRPL_BENCH("fig4_currencies", "Fig 4", "most used currencies") {
//       const auto& history = xrpl::bench::dataset();
//       ...
//       return 0;
//   }
//
// The macro expands to the bench body plus the binary's main(), which
//
//  * handles `--options` (print the XRPL_* knob table and exit — the
//    README's "Environment knobs" section is this output);
//  * enables obs recording unless XRPL_OBS=0 was set explicitly;
//  * prints the standard header, times the body with the one
//    sanctioned wall clock (obs::Stopwatch), and
//  * writes BENCH_<name>.json (deterministically ordered keys:
//    "bench", "obs", "wall_seconds") into XRPL_BENCH_JSON_DIR.
#pragma once

#include <string_view>

namespace xrpl::bench {

struct BenchInfo {
    std::string_view name;   // snake_case id: json filename, binary name
    std::string_view display;  // "Fig 4", "Table II", "Extension"
    std::string_view title;  // one-line description for the header
    int (*run)();
};

/// Register a bench (the XRPL_BENCH macro's registrar calls this
/// during static init). The registry is per-binary; each figure
/// binary registers exactly one bench.
void register_bench(const BenchInfo& info);

/// Run every registered bench: header, body, BENCH_<name>.json.
/// Returns the first nonzero body exit code, else 0.
int harness_main(int argc, char** argv);

}  // namespace xrpl::bench

#define XRPL_BENCH(name_str, display_str, title_str)                       \
    static int xrpl_bench_body();                                          \
    static const bool xrpl_bench_registered = [] {                         \
        ::xrpl::bench::register_bench(                                     \
            {name_str, display_str, title_str, &xrpl_bench_body});         \
        return true;                                                       \
    }();                                                                   \
    int main(int argc, char** argv) {                                      \
        return ::xrpl::bench::harness_main(argc, argv);                    \
    }                                                                      \
    static int xrpl_bench_body()
